package pmem

import "fmt"

// Persistent allocator.
//
// The heap grows from heapStart to the end of the pool. Every block carries a
// one-word header immediately before its payload:
//
//	header word: size-in-words (low 32 bits) | blockAllocated flag
//
// Free blocks keep a singly-linked free list threaded through payload word 0.
// Allocation is first-fit with splitting; Free pushes onto the list head.
// Header and list updates are made durable immediately (persistMeta), so the
// heap structure is always crash-consistent — what PMDK's allocator provides
// internally. There is deliberately no garbage collection: a payload nobody
// frees stays allocated forever, which is exactly the persistent-leak failure
// mode (paper §2.4, cases f8/f12).

// Alloc allocates words payload words and returns the payload address.
// Contents are NOT zeroed (previous occupants' bits remain, as with real
// allocators) — use Zalloc for cleared memory.
func (p *Pool) Alloc(words int) (uint64, error) {
	if p.crashLatched {
		return 0, ErrCrashInjected
	}
	if words <= 0 {
		words = 1
	}
	idx, err := p.allocIndex(words)
	if err != nil {
		return 0, err
	}
	// A crash injected mid-allocation: the durable state is whatever prefix
	// of the metadata updates completed; the program never gets the address.
	if p.crashLatched {
		return 0, ErrCrashInjected
	}
	addr := Base + uint64(idx)
	p.stats.Allocs++
	if p.obsOn {
		p.sink.Count("pmem.alloc", 1)
		p.sink.Count("pmem.alloc_words", int64(words))
		p.sink.SetGauge("pmem.live_words", int64(p.LiveWords()))
	}
	if p.hooks.OnAlloc != nil {
		p.hooks.OnAlloc(addr, words)
	}
	return addr, nil
}

// Zalloc allocates and zeroes words payload words (pmemobj_zalloc analogue).
func (p *Pool) Zalloc(words int) (uint64, error) {
	addr, err := p.Alloc(words)
	if err != nil {
		return 0, err
	}
	i := int(addr - Base)
	for w := 0; w < words; w++ {
		p.setCurAt(i+w, 0)
	}
	p.persistMeta(i, words)
	if p.crashLatched {
		return 0, ErrCrashInjected
	}
	if p.hooks.OnZero != nil {
		p.hooks.OnZero(addr, words)
	}
	return addr, nil
}

// allocIndex finds or creates a block and returns the payload word index.
func (p *Pool) allocIndex(words int) (int, error) {
	// First-fit over the free list.
	prev := -1
	cur := int(p.curAt(hdrFreeHead))
	for cur != 0 {
		hdr := p.curAt(cur - 1)
		size := int(hdr & blockSizeMask)
		if hdr&blockAllocated != 0 {
			return 0, fmt.Errorf("%w: free list entry %d is allocated", ErrCorruptHeader, cur)
		}
		if p.rangeQuarantined(cur-1, size+1) {
			// Block overlaps a quarantined media region: never hand it out.
			prev = cur
			cur = int(p.curAt(cur))
			continue
		}
		if size >= words {
			next := int(p.curAt(cur))
			if size >= words+2 {
				// Split: the tail becomes a smaller free block.
				restIdx := cur + words + 1
				restSize := size - words - 1
				p.setCurAt(restIdx-1, uint64(restSize))
				p.setCurAt(restIdx, uint64(next))
				next = restIdx
				p.setCurAt(cur-1, uint64(words))
				p.persistMeta(restIdx-1, 2)
			}
			p.unlinkFree(prev, next)
			p.setCurAt(cur-1, p.curAt(cur-1)|blockAllocated)
			p.persistMeta(cur-1, 1)
			p.bumpLive(int(p.curAt(cur-1) & blockSizeMask))
			return cur, nil
		}
		prev = cur
		cur = int(p.curAt(cur))
	}
	// Bump allocation from never-used space. Quarantined media regions are
	// never handed out: the allocator carves filler blocks (blockFiller, live
	// but never exposed) over them so the block chain stays walkable and
	// live-word accounting stays exact.
	next := int(p.curAt(hdrHeapNext))
	for p.rangeQuarantined(next, words+1) {
		skipTo := next
		for b := next / MediaBlockWords; b <= (next+words)/MediaBlockWords; b++ {
			if p.quar[b] && (b+1)*MediaBlockWords > skipTo {
				skipTo = (b + 1) * MediaBlockWords
			}
		}
		if skipTo < next+2 {
			skipTo = next + 2 // a filler needs a header plus >=1 payload word
		}
		if skipTo+words+1 > p.words {
			return 0, fmt.Errorf("%w: need %d words past quarantined media", ErrOutOfSpace, words+1)
		}
		fill := skipTo - next - 1
		p.setCurAt(next, uint64(fill)|blockAllocated|blockFiller)
		p.setCurAt(hdrHeapNext, uint64(skipTo))
		p.persistMeta(next, 1)
		p.persistMeta(hdrHeapNext, 1)
		p.bumpLive(fill)
		next = skipTo
	}
	if next+words+1 > p.words {
		return 0, fmt.Errorf("%w: need %d words, %d free", ErrOutOfSpace, words+1, p.words-next)
	}
	p.setCurAt(next, uint64(words)|blockAllocated)
	p.setCurAt(hdrHeapNext, uint64(next+words+1))
	p.persistMeta(next, 1)
	p.persistMeta(hdrHeapNext, 1)
	p.bumpLive(words)
	return next + 1, nil
}

func (p *Pool) unlinkFree(prevPayload, nextPayload int) {
	if prevPayload < 0 {
		p.setCurAt(hdrFreeHead, uint64(nextPayload))
		p.persistMeta(hdrFreeHead, 1)
	} else {
		p.setCurAt(prevPayload, uint64(nextPayload))
		p.persistMeta(prevPayload, 1)
	}
}

func (p *Pool) bumpLive(delta int) {
	p.setCurAt(hdrLiveWords, uint64(int(p.curAt(hdrLiveWords))+delta))
	p.persistMeta(hdrLiveWords, 1)
}

// Free returns the block whose payload starts at addr to the free list.
func (p *Pool) Free(addr uint64) error {
	if p.crashLatched {
		return ErrCrashInjected
	}
	i, err := p.index(addr)
	if err != nil {
		return err
	}
	if i <= heapStart || i >= int(p.curAt(hdrHeapNext)) {
		return fmt.Errorf("%w: %#x outside heap", ErrBadFree, addr)
	}
	hdr := p.curAt(i - 1)
	if hdr&blockAllocated == 0 {
		return fmt.Errorf("%w: %#x (double free?)", ErrBadFree, addr)
	}
	if hdr&blockFiller != 0 {
		return fmt.Errorf("%w: %#x is a quarantine filler", ErrBadFree, addr)
	}
	size := int(hdr & blockSizeMask)
	if size <= 0 || i+size > p.words {
		return fmt.Errorf("%w: block at %#x has size %d", ErrCorruptHeader, addr, size)
	}
	p.setCurAt(i-1, uint64(size)) // clear allocated flag
	p.setCurAt(i, p.curAt(hdrFreeHead))
	p.setCurAt(hdrFreeHead, uint64(i))
	p.persistMeta(i-1, 2)
	p.persistMeta(hdrFreeHead, 1)
	p.bumpLive(-size)
	// A crash injected mid-free: some prefix of the metadata updates is
	// durable; the caller sees the crash, not a completed free.
	if p.crashLatched {
		return ErrCrashInjected
	}
	p.stats.Frees++
	if p.obsOn {
		p.sink.Count("pmem.free", 1)
		p.sink.Count("pmem.freed_words", int64(size))
		p.sink.SetGauge("pmem.live_words", int64(p.LiveWords()))
	}
	if p.hooks.OnFree != nil {
		p.hooks.OnFree(addr, size)
	}
	return nil
}

// IsAllocated reports whether addr is the payload start of a live block.
func (p *Pool) IsAllocated(addr uint64) bool {
	i, err := p.index(addr)
	if err != nil || i <= heapStart || i >= int(p.curAt(hdrHeapNext)) {
		return false
	}
	hdr := p.curAt(i - 1)
	return hdr&blockAllocated != 0
}

// BlockSize returns the payload size of the live block at addr.
func (p *Pool) BlockSize(addr uint64) (int, error) {
	if !p.IsAllocated(addr) {
		return 0, fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	i := int(addr - Base)
	return int(p.curAt(i-1) & blockSizeMask), nil
}

// LiveWords returns the number of payload words currently allocated.
func (p *Pool) LiveWords() int { return int(p.curAt(hdrLiveWords)) }

// FreeWords returns an estimate of allocatable payload words remaining.
func (p *Pool) FreeWords() int {
	free := p.words - int(p.curAt(hdrHeapNext))
	for cur := int(p.curAt(hdrFreeHead)); cur != 0; cur = int(p.curAt(cur)) {
		free += int(p.curAt(cur-1) & blockSizeMask)
		if p.curAt(cur-1)&blockAllocated != 0 {
			break // corrupt; stop rather than loop
		}
	}
	return free
}

// InAllocatedPayload reports whether addr lies inside the payload of a
// currently-allocated block (or the root/header region). Reversion uses it
// to avoid scribbling over free-list links inside freed blocks.
func (p *Pool) InAllocatedPayload(addr uint64) bool {
	if !p.Contains(addr) {
		return false
	}
	i := int(addr - Base)
	if i < heapStart {
		return true // header/root region is always writable state
	}
	w := heapStart
	end := int(p.curAt(hdrHeapNext))
	for w < end {
		hdr := p.curAt(w)
		size := int(hdr & blockSizeMask)
		if size <= 0 || w+1+size > end {
			return false // corrupt heap: refuse
		}
		if i >= w+1 && i < w+1+size {
			return hdr&blockAllocated != 0
		}
		w += 1 + size
	}
	return false
}

// LiveBlocks returns the payload addresses of all allocated blocks, in heap
// order. Used by integrity checks and the leak-mitigation diff. Quarantine
// fillers are excluded: they are live for accounting but were never handed
// to a program, so the leak diff must not try to free them.
func (p *Pool) LiveBlocks() []uint64 {
	var out []uint64
	i := heapStart
	end := int(p.curAt(hdrHeapNext))
	for i < end {
		hdr := p.curAt(i)
		size := int(hdr & blockSizeMask)
		if size <= 0 || i+1+size > end {
			break // corrupt heap; integrity check reports details
		}
		if hdr&blockAllocated != 0 && hdr&blockFiller == 0 {
			out = append(out, Base+uint64(i+1))
		}
		i += 1 + size
	}
	return out
}
