package pmem

import "errors"

// Crash-point injection: the hook layer the torture harness (internal/
// torture) uses to enumerate and interrupt durability events.
//
// Every operation that moves words from the current image to the durable
// image is a *durability event*: a library persist (Persist / a drained
// fence), one range of a transaction commit, or an allocator/root metadata
// update. A CrashFunc observes each event before it happens and may order a
// crash there — optionally *torn*, with only the first k of the event's n
// words made durable, modeling a power failure mid-flush of a multi-line
// range (the hard-fault states the PM bug studies show real recovery code
// is almost never tested against).
//
// A crash latches the pool: from that point on no further data becomes
// durable, no durability/allocator hooks fire (the checkpoint log in PM
// cannot learn about events that never happened), and any later durability
// operation fails fast with ErrCrashInjected so the driving VM stops
// promptly. Loads and stores keep working — they are volatile and will be
// discarded by the Crash() call the harness issues next — so the latch
// never changes the durable state an actual power loss at that instant
// would have left behind.

// DurKind classifies a durability event.
type DurKind uint8

// Durability event kinds.
const (
	// DurPersist is a library persist outside any transaction (Persist, or
	// a flush+fence pair drained by the VM).
	DurPersist DurKind = iota
	// DurTxRange is one coalesced range of a PersistTx commit; a commit of
	// r ranges produces r consecutive DurTxRange events.
	DurTxRange
	// DurMeta is an allocator or root-slot metadata update (persistMeta):
	// block headers, free-list links, the heap bump pointer, root slots.
	DurMeta
)

func (k DurKind) String() string {
	switch k {
	case DurPersist:
		return "persist"
	case DurTxRange:
		return "tx"
	case DurMeta:
		return "meta"
	}
	return "unknown"
}

// DurEvent describes one durability event offered to a CrashFunc.
type DurEvent struct {
	Kind  DurKind
	Addr  uint64 // absolute address of the range
	Words int    // words the event would make durable
}

// CrashFunc decides, per durability event, whether to crash the pool there.
// Returning crash=true latches the pool after making only the first `keep`
// words of the event durable (keep is clamped to [0, ev.Words]; keep ==
// ev.Words models a crash after the flush completed but before the
// checkpoint hook / tx commit ran). The function runs synchronously on the
// mutating goroutine; it must not call back into the pool.
type CrashFunc func(ev DurEvent) (keep int, crash bool)

// ErrCrashInjected is returned by durability operations attempted after an
// injected crash latched the pool. The VM surfaces it as a trap, which is
// how a torture trial's execution stops near its crash point.
var ErrCrashInjected = errors.New("pmem: crash injected")

// SetCrashFunc installs (or, with nil, removes) a crash-injection hook.
// Installing a hook does not clear an existing latch.
func (p *Pool) SetCrashFunc(f CrashFunc) { p.crashFn = f }

// CrashLatched reports whether an injected crash has latched the pool.
func (p *Pool) CrashLatched() bool { return p.crashLatched }

// ResetCrashLatch clears the injected-crash latch, re-enabling durability.
// The harness calls it after Crash() has discarded volatile state, before
// running recovery against the (possibly torn) durable image.
func (p *Pool) ResetCrashLatch() { p.crashLatched = false }

// offerCrash consults the crash hook for one durability event. It returns
// the number of words to actually make durable; the latch is set first so
// the caller's own hook firing (and every later event) is suppressed.
func (p *Pool) offerCrash(kind DurKind, addr uint64, words int) int {
	if p.crashFn == nil {
		return words
	}
	keep, crash := p.crashFn(DurEvent{Kind: kind, Addr: addr, Words: words})
	if !crash {
		return words
	}
	p.crashLatched = true
	if keep < 0 {
		keep = 0
	}
	if keep > words {
		keep = words
	}
	return keep
}
