package pmem

import (
	"bytes"
	"testing"

	"arthas/internal/obs"
)

// mustLoad/mustDur are tiny helpers keeping the fork assertions readable.
func mustLoad(t *testing.T, p *Pool, addr uint64) uint64 {
	t.Helper()
	v, err := p.Load(addr)
	if err != nil {
		t.Fatalf("Load(%#x): %v", addr, err)
	}
	return v
}

func mustDur(t *testing.T, p *Pool, addr uint64) uint64 {
	t.Helper()
	v, err := p.ReadDurable(addr)
	if err != nil {
		t.Fatalf("ReadDurable(%#x): %v", addr, err)
	}
	return v
}

func TestForkSeesBaseState(t *testing.T) {
	base := New(512)
	a, err := base.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Store(a, 11); err != nil {
		t.Fatal(err)
	}
	if err := base.Persist(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := base.Store(a+1, 22); err != nil { // dirty, not durable
		t.Fatal(err)
	}
	if err := base.SetRoot(0, a); err != nil {
		t.Fatal(err)
	}

	f := base.Fork()
	if !f.IsFork() || base.IsFork() {
		t.Fatalf("IsFork: fork=%v base=%v", f.IsFork(), base.IsFork())
	}
	if got := mustLoad(t, f, a); got != 11 {
		t.Fatalf("fork sees %d at persisted word, want 11", got)
	}
	if got := mustLoad(t, f, a+1); got != 22 {
		t.Fatalf("fork sees %d at dirty word, want 22 (current image travels)", got)
	}
	if got := mustDur(t, f, a+1); got != 0 {
		t.Fatalf("fork durable image has %d at unpersisted word, want 0", got)
	}
	if r, _ := f.Root(0); r != a {
		t.Fatalf("fork root = %#x, want %#x", r, a)
	}
	if f.LiveWords() != base.LiveWords() {
		t.Fatalf("fork LiveWords %d != base %d", f.LiveWords(), base.LiveWords())
	}
}

func TestForkIsolation(t *testing.T) {
	base := New(512)
	a, err := base.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Store(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := base.Persist(a, 1); err != nil {
		t.Fatal(err)
	}

	f1 := base.Fork()
	f2 := base.Fork()

	// Fork stores and persists stay fork-local.
	if err := f1.Store(a, 100); err != nil {
		t.Fatal(err)
	}
	if err := f1.Persist(a, 1); err != nil {
		t.Fatal(err)
	}
	if got := mustLoad(t, base, a); got != 1 {
		t.Fatalf("base sees fork store: %d", got)
	}
	if got := mustDur(t, base, a); got != 1 {
		t.Fatalf("base durable sees fork persist: %d", got)
	}
	if got := mustLoad(t, f2, a); got != 1 {
		t.Fatalf("sibling fork sees fork store: %d", got)
	}

	// Fork allocations stay fork-local: the sibling and base allocate the
	// same address the fork took, because the fork's bump pointer moved
	// only in its overlay.
	b1, err := f1.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := f2.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatalf("sibling forks allocated different addresses: %#x vs %#x", b1, b2)
	}
	if base.IsAllocated(b1) {
		t.Fatalf("base sees fork allocation at %#x", b1)
	}
	if !f1.IsAllocated(b1) || !f2.IsAllocated(b2) {
		t.Fatal("forks do not see their own allocations")
	}

	// WriteDurable (the reversion primitive) stays fork-local too.
	if err := f1.WriteDurable(a, 777); err != nil {
		t.Fatal(err)
	}
	if got := mustDur(t, base, a); got != 1 {
		t.Fatalf("base durable sees fork WriteDurable: %d", got)
	}

	// Fork Crash loses fork-dirty AND base-dirty-at-fork-time words without
	// touching the base.
	if err := base.Store(a+1, 5); err != nil { // dirty in base before forking
		t.Fatal(err)
	}
	f3 := base.Fork()
	if err := f3.Store(a+2, 6); err != nil {
		t.Fatal(err)
	}
	f3.Crash()
	if got := mustLoad(t, f3, a+1); got != 0 {
		t.Fatalf("fork crash kept inherited dirty word: %d", got)
	}
	if got := mustLoad(t, f3, a+2); got != 0 {
		t.Fatalf("fork crash kept fork dirty word: %d", got)
	}
	if got := mustLoad(t, base, a+1); got != 5 {
		t.Fatalf("fork crash leaked into base: %d", got)
	}
	if f3.DirtyWords() != 0 {
		t.Fatalf("fork dirty set not cleared: %d", f3.DirtyWords())
	}

	// The fork still passes the integrity check as a pool in its own right.
	if rep := f1.CheckIntegrity(); !rep.OK() {
		t.Fatalf("fork fails integrity: %v", rep)
	}
}

func TestForkPromote(t *testing.T) {
	base := New(512)
	if err := base.Promote(); err == nil {
		t.Fatal("Promote on a root pool should error")
	}
	a, err := base.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Store(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := base.Persist(a, 1); err != nil {
		t.Fatal(err)
	}

	f := base.Fork()
	b, err := f.Zalloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Store(b, 42); err != nil {
		t.Fatal(err)
	}
	if err := f.Persist(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteDurable(a, 9); err != nil {
		t.Fatal(err)
	}
	if err := f.Store(b+1, 77); err != nil { // left dirty: must travel as dirty
		t.Fatal(err)
	}

	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := mustLoad(t, base, a); got != 9 {
		t.Fatalf("promoted reversion missing: %d", got)
	}
	if got := mustDur(t, base, b); got != 42 {
		t.Fatalf("promoted persist missing: %d", got)
	}
	if !base.IsAllocated(b) {
		t.Fatal("promoted allocation missing")
	}
	if got := mustLoad(t, base, b+1); got != 77 {
		t.Fatalf("promoted dirty store missing: %d", got)
	}
	base.Crash()
	if got := mustLoad(t, base, b+1); got != 0 {
		t.Fatalf("promoted dirty store survived crash: %d", got)
	}
	if rep := base.CheckIntegrity(); !rep.OK() {
		t.Fatalf("base fails integrity after promote: %v", rep)
	}
}

// TestForkPromoteFileRoundTrip checks the winning fork's state round-trips
// through the v2 pool-file format with stats and the flight recorder intact.
func TestForkPromoteFileRoundTrip(t *testing.T) {
	base := New(512)
	fl := obs.NewFlight(64)
	base.AttachFlight(fl)
	fl.Count("test.event", 3)

	a, err := base.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Store(a, 5); err != nil {
		t.Fatal(err)
	}
	if err := base.Persist(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := base.SetRoot(0, a); err != nil {
		t.Fatal(err)
	}

	f := base.Fork()
	if err := f.WriteDurable(a, 50); err != nil {
		t.Fatal(err)
	}
	b, err := f.Zalloc(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Store(b, 60); err != nil {
		t.Fatal(err)
	}
	if err := f.Persist(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := base.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPool(&buf)
	if err != nil {
		t.Fatalf("ReadPool after promote: %v", err)
	}
	if got.FormatVersion() != 3 {
		t.Fatalf("format version %d, want 3", got.FormatVersion())
	}
	if v := mustDur(t, got, a); v != 50 {
		t.Fatalf("reopened image lost promoted reversion: %d", v)
	}
	if v := mustDur(t, got, b); v != 60 {
		t.Fatalf("reopened image lost promoted persist: %d", v)
	}
	if !got.IsAllocated(b) {
		t.Fatal("reopened image lost promoted allocation")
	}
	// Stats travelled (fork stats replace the base's at promote time).
	if got.Stats().Allocs != base.Stats().Allocs || got.Stats().Allocs < 2 {
		t.Fatalf("stats did not round-trip: %+v vs %+v", got.Stats(), base.Stats())
	}
	if got.Flight() == nil {
		t.Fatal("flight recorder did not round-trip")
	}
}

// TestForkWriteToMaterializesOverlay checks a fork can itself be serialized
// (durImage materializes overlays) and reopened as an ordinary pool.
func TestForkWriteToMaterializesOverlay(t *testing.T) {
	base := New(256)
	a, err := base.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Store(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := base.Persist(a, 1); err != nil {
		t.Fatal(err)
	}
	f := base.Fork()
	if err := f.WriteDurable(a, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPool(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v := mustDur(t, got, a); v != 2 {
		t.Fatalf("serialized fork lost overlay write: %d", v)
	}
	if v := mustDur(t, base, a); v != 1 {
		t.Fatalf("serializing a fork disturbed the base: %d", v)
	}
}
