package pmem

// PoolInfo is a forensic summary of a pool image — what `arthas-inspect
// info` prints (the pmempool-info analogue). All word counts describe the
// durable image.
type PoolInfo struct {
	FormatVersion int // pool-file format this pool was read from
	Words         int // total pool size in words
	HeapUsed      int // words ever handed to the heap (bump pointer)
	LiveWords     int // payload words currently allocated
	FreeWords     int // allocatable payload words remaining
	FreeBlocks    int // blocks on the free list (bounded walk)
	LiveBlocks    int // allocated blocks in the heap
	NonzeroWords  int // durable words holding a nonzero value
	DirtyWords    int // stored-but-unpersisted words (0 after a clean open)
	Roots         [NumRoots]uint64
	Stats         Stats

	// Media-fault state (format v3; see docs/MEDIA_FAULTS.md).
	MediaBlocks       int   // checksummed media blocks covering the pool
	CorruptBlocks     []int // blocks whose checksum currently mismatches
	QuarantinedBlocks []int // blocks fenced off from allocation
	MediaDegraded     bool  // header block was unrepairable
}

// Info summarizes the pool for forensic display. It tolerates corrupt
// images: walks are bounded and never panic, so it is safe on a pool
// opened with ReadPoolInspect.
func (p *Pool) Info() PoolInfo {
	info := PoolInfo{
		FormatVersion: p.fileVersion,
		Words:         p.words,
		DirtyWords:    len(p.dirty),
		Stats:         p.stats,
	}
	durable := p.durImage()
	heapNext := int(durable[hdrHeapNext])
	if heapNext >= heapStart && heapNext <= p.words {
		info.HeapUsed = heapNext - heapStart
	}
	info.LiveWords = int(durable[hdrLiveWords])
	info.FreeWords = p.FreeWords()
	info.LiveBlocks = len(p.LiveBlocks())
	// Bounded free-list walk: stop on cycles or corruption.
	seen := map[int]bool{}
	for cur := int(durable[hdrFreeHead]); cur != 0 && cur < p.words && !seen[cur]; {
		seen[cur] = true
		info.FreeBlocks++
		next := int(durable[cur])
		if next < 0 || next >= p.words {
			break
		}
		cur = next
	}
	for i := 0; i < NumRoots; i++ {
		info.Roots[i] = durable[hdrRootBase+i]
	}
	for _, w := range durable {
		if w != 0 {
			info.NonzeroWords++
		}
	}
	info.MediaBlocks = p.MediaBlocks()
	info.CorruptBlocks = p.CorruptMediaBlocks()
	info.QuarantinedBlocks = p.QuarantinedBlocks()
	info.MediaDegraded = p.MediaDegraded()
	return info
}
