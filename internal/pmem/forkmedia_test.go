package pmem

import (
	"errors"
	"testing"
)

// Regression tests for the fork/overlay × media-checksum interaction
// (companion to forkcrash_test.go): checksum state must be copy-on-write, so
// a media fault injected in a fork is invisible to the base while the fork
// lives, and stays DETECTABLE in the base if the fork is promoted.

func TestForkMediaFaultIsForkLocal(t *testing.T) {
	base := New(512)
	a, _ := base.Alloc(4)
	base.Store(a, 42)
	base.Persist(a, 1)

	f := base.Fork()
	if _, err := f.InjectMediaFault(MediaFault{Kind: MediaBitFlip, Addr: a, Bits: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Load(a); !errors.Is(err, ErrMediaCorrupt) {
		t.Fatalf("fork Load after fork-local fault: %v, want ErrMediaCorrupt", err)
	}
	// The base is untouched: clean verification, clean reads.
	if merr := base.VerifyMedia(); merr != nil {
		t.Fatalf("fork-injected fault leaked into base: %v", merr)
	}
	if v, err := base.Load(a); err != nil || v != 42 {
		t.Fatalf("base Load = %d, %v", v, err)
	}
}

func TestForkWritesDoNotDisturbBaseSeals(t *testing.T) {
	base := New(512)
	a, _ := base.Alloc(8)
	base.Store(a, 1)
	base.Persist(a, 1)

	f := base.Fork()
	for w := uint64(0); w < 8; w++ {
		f.Store(a+w, 1000+w)
	}
	f.Persist(a, 8)
	if merr := f.VerifyMedia(); merr != nil {
		t.Fatalf("fork's own checksums broken by fork persists: %v", merr)
	}
	if merr := base.VerifyMedia(); merr != nil {
		t.Fatalf("fork persists corrupted base seals: %v", merr)
	}
	if v, err := base.Load(a); err != nil || v != 1 {
		t.Fatalf("base Load = %d, %v", v, err)
	}
}

func TestPromoteCarriesMediaFaultDetectably(t *testing.T) {
	// The satellite's exact hazard: promoting a fork that carries a media
	// fault must NOT re-seal the corruption into the base. After Promote the
	// base must still flag the poisoned block until a scrub re-verifies it.
	base := New(512)
	a, _ := base.Alloc(4)
	base.Store(a, 42)
	base.Persist(a, 1)

	f := base.Fork()
	f.Store(a+1, 77)
	f.Persist(a+1, 1)
	if _, err := f.InjectMediaFault(MediaFault{Kind: MediaBitFlip, Addr: a, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Load(a); !errors.Is(err, ErrMediaCorrupt) {
		t.Fatalf("Promote blessed fork-injected corruption: Load err = %v", err)
	}
	merr := base.VerifyMedia()
	if merr == nil {
		t.Fatal("base verifies clean after promoting a corrupt fork")
	}
	// And the scrubber can still heal it in the base.
	reps := base.RepairMedia(
		[]AllocHint{{Addr: a, Words: 4}},
		func(addr uint64) (uint64, bool) {
			switch addr {
			case a:
				return 42, true
			case a + 1:
				return 77, true
			}
			return 0, false
		},
	)
	if len(reps) != 1 || !reps[0].Healed {
		t.Fatalf("repairs = %+v", reps)
	}
	if v, err := base.Load(a); err != nil || v != 42 {
		t.Fatalf("base Load after heal = %d, %v", v, err)
	}
	if v, err := base.Load(a + 1); err != nil || v != 77 {
		t.Fatalf("promoted fork write lost: %d, %v", v, err)
	}
}

func TestPromoteCarriesQuarantineAndCleanSeals(t *testing.T) {
	base := New(2048)
	a, _ := base.Alloc(4)
	base.Store(a, 9)
	base.Persist(a, 1)

	f := base.Fork()
	blk := int(f.durAt(hdrHeapNext))/MediaBlockWords + 1
	if err := f.QuarantineMediaBlock(blk); err != nil {
		t.Fatal(err)
	}
	f.Store(a, 10)
	f.Persist(a, 1)
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if !base.IsQuarantined(blk) {
		t.Fatal("quarantine set not transplanted on Promote")
	}
	if merr := base.VerifyMedia(); merr != nil {
		t.Fatalf("base seals broken after clean promote: %v", merr)
	}
	if v, err := base.Load(a); err != nil || v != 10 {
		t.Fatalf("base Load = %d, %v", v, err)
	}
	na, err := base.Alloc(30)
	if err != nil {
		t.Fatal(err)
	}
	lo := Base + uint64(blk*MediaBlockWords)
	if na+30 > lo && na < lo+MediaBlockWords {
		t.Fatalf("base allocated %#x inside promoted quarantine block %d", na, blk)
	}
}

func TestForkCrashKeepsSealsConsistent(t *testing.T) {
	base := New(512)
	a, _ := base.Alloc(4)
	base.Store(a, 5)
	base.Persist(a, 1)

	f := base.Fork()
	f.Store(a+1, 6) // dirty in fork, never persisted
	f.Crash()
	f.ResetCrashLatch()
	if merr := f.VerifyMedia(); merr != nil {
		t.Fatalf("fork seals broken after fork crash: %v", merr)
	}
	if merr := base.VerifyMedia(); merr != nil {
		t.Fatalf("base seals broken by fork crash: %v", merr)
	}
}
