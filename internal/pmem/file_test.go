package pmem

import (
	"bytes"
	"testing"
)

func TestPoolFileRoundTrip(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	p.Store(a, 11)
	p.Store(a+1, 22)
	p.Persist(a, 2)
	p.Store(a+2, 33) // NOT persisted: must not travel
	p.SetRoot(0, a)

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPool(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Words() != 512 {
		t.Fatalf("words = %d", q.Words())
	}
	root, _ := q.Root(0)
	if root != a {
		t.Fatalf("root = %#x, want %#x", root, a)
	}
	v0, _ := q.Load(a)
	v1, _ := q.Load(a + 1)
	v2, _ := q.Load(a + 2)
	if v0 != 11 || v1 != 22 {
		t.Fatalf("persisted data lost: %d %d", v0, v1)
	}
	if v2 == 33 {
		t.Fatal("unpersisted store traveled through the pool file")
	}
	// Allocator state travels: the block is still live, new allocations
	// do not overlap it.
	if !q.IsAllocated(a) {
		t.Fatal("allocation lost")
	}
	b, err := q.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a && b < a+4 {
		t.Fatal("new allocation overlaps reopened block")
	}
}

func TestPoolFileRejectsGarbage(t *testing.T) {
	if _, err := ReadPool(bytes.NewReader([]byte("not a pool file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadPool(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPoolFileRejectsTruncated(t *testing.T) {
	p := New(256)
	var buf bytes.Buffer
	p.WriteTo(&buf)
	data := buf.Bytes()
	if _, err := ReadPool(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestPoolFileRejectsCorruptImage(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	// Corrupt the durable allocator header before saving.
	p.WriteDurable(a-1, 0)
	var buf bytes.Buffer
	p.WriteTo(&buf)
	if _, err := ReadPool(&buf); err == nil {
		t.Fatal("corrupt pool image accepted")
	}
}
