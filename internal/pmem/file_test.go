package pmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"arthas/internal/obs"
)

func TestPoolFileRoundTrip(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	p.Store(a, 11)
	p.Store(a+1, 22)
	p.Persist(a, 2)
	p.Store(a+2, 33) // NOT persisted: must not travel
	p.SetRoot(0, a)

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPool(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Words() != 512 {
		t.Fatalf("words = %d", q.Words())
	}
	root, _ := q.Root(0)
	if root != a {
		t.Fatalf("root = %#x, want %#x", root, a)
	}
	v0, _ := q.Load(a)
	v1, _ := q.Load(a + 1)
	v2, _ := q.Load(a + 2)
	if v0 != 11 || v1 != 22 {
		t.Fatalf("persisted data lost: %d %d", v0, v1)
	}
	if v2 == 33 {
		t.Fatal("unpersisted store traveled through the pool file")
	}
	// Allocator state travels: the block is still live, new allocations
	// do not overlap it.
	if !q.IsAllocated(a) {
		t.Fatal("allocation lost")
	}
	b, err := q.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a && b < a+4 {
		t.Fatal("new allocation overlaps reopened block")
	}
}

func TestPoolFileRejectsGarbage(t *testing.T) {
	if _, err := ReadPool(bytes.NewReader([]byte("not a pool file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadPool(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPoolFileRejectsTruncated(t *testing.T) {
	p := New(256)
	var buf bytes.Buffer
	p.WriteTo(&buf)
	data := buf.Bytes()
	if _, err := ReadPool(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestPoolFileRejectsCorruptImage(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	// Corrupt the durable allocator header before saving.
	p.WriteDurable(a-1, 0)
	var buf bytes.Buffer
	p.WriteTo(&buf)
	if _, err := ReadPool(&buf); err == nil {
		t.Fatal("corrupt pool image accepted")
	}
}

func TestPoolFileInspectOpensCorruptImage(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	p.WriteDurable(a-1, 0) // corrupt allocator header
	var buf bytes.Buffer
	p.WriteTo(&buf)
	q, err := ReadPoolInspect(&buf)
	if err != nil {
		t.Fatalf("inspect open failed: %v", err)
	}
	if rep := q.CheckIntegrity(); rep.OK() {
		t.Fatal("integrity check missed the corruption")
	}
}

func TestPoolFileRejectsBadMagic(t *testing.T) {
	p := New(256)
	var buf bytes.Buffer
	p.WriteTo(&buf)
	data := buf.Bytes()
	binary.LittleEndian.PutUint64(data[0:], 0xDEADBEEF)
	if _, err := ReadPool(bytes.NewReader(data)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestPoolFileRejectsBadVersion(t *testing.T) {
	p := New(256)
	var buf bytes.Buffer
	p.WriteTo(&buf)
	data := buf.Bytes()
	binary.LittleEndian.PutUint64(data[8:], 99)
	if _, err := ReadPool(bytes.NewReader(data)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestPoolFileRejectsTruncatedEverywhere(t *testing.T) {
	p := New(128)
	fl := obs.NewFlight(16)
	fl.Count("pmem.store", 1)
	p.AttachFlight(fl)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Every proper prefix must be rejected: header, durable image, stats
	// section, and flight section truncations alike.
	for cut := 0; cut < len(data); cut += 13 {
		if _, err := ReadPool(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at byte %d accepted (len %d)", cut, len(data))
		}
	}
}

func TestPoolFileTypedErrors(t *testing.T) {
	p := New(128)
	fl := obs.NewFlight(16)
	fl.Count("pmem.store", 1)
	p.AttachFlight(fl)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	poolEnd := 24 + 8*128 // header + durable image

	mutate := func(fn func(d []byte) []byte) []byte {
		d := make([]byte, len(full))
		copy(d, full)
		return fn(d)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrNotPoolFile},
		{"garbage", []byte("garbage garbage garbage"), ErrNotPoolFile},
		{"bad magic", mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[0:], 0xBAD)
			return d
		}), ErrNotPoolFile},
		{"future version", mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[8:], 99)
			return d
		}), ErrCorruptImage},
		{"implausible size", mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16:], 1<<40)
			return d
		}), ErrCorruptImage},
		{"truncated header", full[:17], ErrTruncatedImage},
		{"truncated image", full[:poolEnd/2], ErrTruncatedImage},
		{"truncated stats", full[:poolEnd+4], ErrTruncatedImage},
		{"implausible stats count", mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[poolEnd:], 1<<30)
			return d
		}), ErrCorruptImage},
		{"truncated flight length", full[:poolEnd+8*8+4], ErrTruncatedImage},
		{"implausible flight length", mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[poolEnd+8*8:], 1<<40)
			return d
		}), ErrCorruptImage},
		{"truncated flight section", full[:len(full)-3], ErrTruncatedImage},
		{"undecodable flight section", mutate(func(d []byte) []byte {
			for i := poolEnd + 8*9; i < len(d); i++ {
				d[i] = 0xFF
			}
			return d
		}), ErrCorruptImage},
	}
	for _, tc := range cases {
		_, err := ReadPool(bytes.NewReader(tc.data))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: error %v, want %v", tc.name, err, tc.want)
		}
		// The lenient inspect reader must reject the same structural damage
		// (it only skips the pool-content checks, never container parsing).
		if _, err := ReadPoolInspect(bytes.NewReader(tc.data)); err == nil {
			t.Fatalf("%s: inspect reader accepted structural damage", tc.name)
		}
	}
}

func TestPoolFileStrictOpenRecoversCrashWindows(t *testing.T) {
	// An image saved out of a crash window must open strict (with an
	// open-time recovery report), not be rejected.
	p := New(256)
	a, _ := p.Alloc(4)
	_, _ = p.Alloc(4)
	p.SetCrashFunc(crashOnEvent(DurMeta, 0, 2))
	if err := p.Free(a); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Free = %v", err)
	}
	p.SetCrashFunc(nil)
	p.Crash()
	p.ResetCrashLatch()

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPool(&buf)
	if err != nil {
		t.Fatalf("strict open rejected a legitimately-crashed image: %v", err)
	}
	rec := q.LastRecovery()
	if rec == nil || rec.Clean() {
		t.Fatal("open-time recovery report missing for a crash-window image")
	}
	if rep := q.CheckIntegrity(); !rep.OK() {
		t.Fatalf("reopened pool inconsistent: %v", rep)
	}
}

func TestPoolFileReadsV1Images(t *testing.T) {
	// A v1 file is exactly header + durable image, no trailing sections.
	p := New(128)
	a, _ := p.Alloc(2)
	p.Store(a, 77)
	p.Persist(a, 1)
	p.SetRoot(3, a)
	var buf bytes.Buffer
	p.WriteTo(&buf)
	v1 := buf.Bytes()[:24+8*128]
	binary.LittleEndian.PutUint64(v1[8:], 1) // rewrite version field

	q, err := ReadPool(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if q.FormatVersion() != 1 {
		t.Fatalf("format version = %d", q.FormatVersion())
	}
	if q.Stats() != (Stats{}) {
		t.Fatalf("v1 image produced stats %+v", q.Stats())
	}
	if v, _ := q.Load(a); v != 77 {
		t.Fatalf("payload = %d", v)
	}
	if root, _ := q.Root(3); root != a {
		t.Fatalf("root = %#x", root)
	}
	if q.Flight() != nil {
		t.Fatal("v1 image produced a flight recorder")
	}
}

func TestPoolFileRoundTripPreservesStatsRootsAndDurability(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	p.Store(a, 1)
	p.Store(a+1, 2)
	p.Persist(a, 2)
	p.Load(a)
	p.SetRoot(0, a)
	p.SetRoot(15, a+1)
	b, _ := p.Alloc(3)
	p.Free(b)
	p.Crash()
	p.Store(a+3, 99) // dirty at save time: must NOT travel
	if p.DirtyWords() == 0 {
		t.Fatal("setup: expected dirty words before save")
	}
	want := p.Stats()

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPool(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Stats(); got != want {
		t.Fatalf("stats did not travel: got %+v, want %+v", got, want)
	}
	for _, slot := range []int{0, 15} {
		pr, _ := p.Root(slot)
		qr, _ := q.Root(slot)
		if pr != qr {
			t.Fatalf("root %d: %#x vs %#x", slot, qr, pr)
		}
	}
	// Durable state travels; volatile (dirty) state has crash semantics.
	if v, _ := q.Load(a); v != 1 {
		t.Fatalf("durable word = %d", v)
	}
	if q.DirtyWords() != 0 {
		t.Fatalf("reopened pool has %d dirty words", q.DirtyWords())
	}
	if v, _ := q.Load(a + 3); v == 99 {
		t.Fatal("unpersisted store traveled")
	}
	// Word-for-word: durable image identical.
	for w := uint64(0); w < uint64(q.Words()); w++ {
		pv, _ := p.ReadDurable(Base + w)
		qv, _ := q.ReadDurable(Base + w)
		if pv != qv {
			t.Fatalf("durable word %d differs: %d vs %d", w, qv, pv)
		}
	}
}

func TestPoolFileRoundTripsFlight(t *testing.T) {
	p := New(128)
	fl := obs.NewFlight(32)
	p.AttachFlight(fl)
	p.SetSink(fl) // route pool telemetry into the recorder
	a, _ := p.Alloc(2)
	p.Store(a, 5)
	p.Persist(a, 1)
	p.Crash()

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPool(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rfl := q.Flight()
	if rfl == nil {
		t.Fatal("flight recorder did not travel")
	}
	a2, b2 := fl.Events(), rfl.Events()
	if len(a2) == 0 || len(a2) != len(b2) {
		t.Fatalf("events: %d vs %d", len(b2), len(a2))
	}
	for i := range a2 {
		if a2[i].Seq != b2[i].Seq || a2[i].Kind != b2[i].Kind || a2[i].Name != b2[i].Name || a2[i].Value != b2[i].Value {
			t.Fatalf("event %d: %+v vs %+v", i, b2[i], a2[i])
		}
	}
	// The crash marker made it into the tail.
	found := false
	for _, e := range b2 {
		if e.Name == "pmem.crash" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pmem.crash missing from recovered tail: %+v", b2)
	}
}

func TestPoolInfo(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	p.Store(a, 9)
	p.Persist(a, 1)
	p.SetRoot(2, a)
	b, _ := p.Alloc(3)
	p.Free(b)

	info := p.Info()
	if info.Words != 256 || info.FormatVersion != 3 {
		t.Fatalf("info = %+v", info)
	}
	if info.LiveWords != 4 || info.LiveBlocks != 1 || info.FreeBlocks != 1 {
		t.Fatalf("alloc info = %+v", info)
	}
	if info.Roots[2] != a {
		t.Fatalf("roots = %v", info.Roots)
	}
	if info.Stats.Allocs != 2 || info.Stats.Frees != 1 {
		t.Fatalf("stats = %+v", info.Stats)
	}
	if info.NonzeroWords == 0 {
		t.Fatal("nonzero durable words = 0")
	}
}
