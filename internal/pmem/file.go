package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"arthas/internal/obs"
)

// Pool file persistence: the pmem_map_file analogue. A pool's DURABLE image
// can be serialized and reopened later — only durable state travels, so a
// save/load cycle has exactly crash semantics (unflushed stores are lost),
// and a pool file written by one process observes the same recovery
// obligations a DAX-mapped file would.
//
// Format v3 (current) appends the media-checksum section after v2's
// forensic sections, so seals travel with the image and corruption that
// happened while the file sat on (or moved between) real media is caught at
// open time (docs/MEDIA_FAULTS.md):
//
//	u64 fileMagic             "ARTH POOL"
//	u64 fileVersion           (3)
//	u64 words                 pool size
//	words × u64               durable image
//	u64 statsN (=7)           stats words that follow
//	statsN × u64              Loads, Stores, Persists, PersistedWords,
//	                          Allocs, Frees, Crashes
//	u64 flightLen             flight buffer byte length (0 = none)
//	flightLen bytes           obs.Flight binary encoding
//	u64 csumBlockWords        media-block granularity (= MediaBlockWords)
//	u64 csumN                 media block count
//	csumN × u64               per-block checksums
//	u64 quarN                 quarantined block count
//	quarN × u64               quarantined block indices, ascending
//	u64 degraded              0/1: header block unrepairable
//
// Format v1 files (everything up to and including the durable image) and v2
// files are still read: missing sections come back zero/empty, and missing
// checksums are backfilled from the durable image (declared authoritative).

// Typed read errors: every way a pool file can fail to load is one of
// these, so callers (and tests) can classify failures with errors.Is
// instead of string matching. Truncation, implausible section lengths, and
// undecodable sections are never silently tolerated — a reader either gets
// a fully parsed pool or a typed error.
var (
	// ErrNotPoolFile marks input that is not a pool file at all.
	ErrNotPoolFile = errors.New("pmem: not a pool file")
	// ErrTruncatedImage marks a pool file cut off mid-record.
	ErrTruncatedImage = errors.New("pmem: truncated pool file")
	// ErrCorruptImage marks a structurally undecodable pool file
	// (implausible lengths, undecodable sections, failed integrity).
	ErrCorruptImage = errors.New("pmem: corrupt pool file")
)

// fileMagic guards against feeding arbitrary files to Open.
const fileMagic uint64 = 0x41525448_504F4F4C // "ARTH POOL"

// fileVersion is the current format; fileVersionV1 is the oldest readable.
const (
	fileVersion   uint64 = 3
	fileVersionV2 uint64 = 2
	fileVersionV1 uint64 = 1
)

// maxFlightSection bounds the flight buffer a reader will load.
const maxFlightSection = 1 << 30

// WriteTo serializes the durable image plus the v2 forensic sections. It
// implements io.WriterTo.
func (p *Pool) WriteTo(w io.Writer) (int64, error) {
	var written int64
	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		n, err := w.Write(buf[:])
		written += int64(n)
		return err
	}
	if err := put(fileMagic); err != nil {
		return written, err
	}
	if err := put(fileVersion); err != nil {
		return written, err
	}
	if err := put(uint64(p.words)); err != nil {
		return written, err
	}
	durable := p.durImage()
	buf := make([]byte, 8*len(durable))
	for i, word := range durable {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	n, err := w.Write(buf)
	written += int64(n)
	if err != nil {
		return written, err
	}

	// Stats section.
	stats := []uint64{
		p.stats.Loads, p.stats.Stores, p.stats.Persists,
		p.stats.PersistedWords.Words, p.stats.Allocs, p.stats.Frees,
		p.stats.Crashes,
	}
	if err := put(uint64(len(stats))); err != nil {
		return written, err
	}
	for _, v := range stats {
		if err := put(v); err != nil {
			return written, err
		}
	}

	// Flight-recorder section.
	var fb []byte
	if p.flight != nil {
		if fb, err = p.flight.MarshalBinary(); err != nil {
			return written, fmt.Errorf("pmem: encoding flight recorder: %w", err)
		}
	}
	if err := put(uint64(len(fb))); err != nil {
		return written, err
	}
	n, err = w.Write(fb)
	written += int64(n)
	if err != nil {
		return written, err
	}

	// Media-checksum section (v3). The image written is durImage(), so a
	// fork's checksums (which track its overlaid durable view) serialize
	// consistently with the image bytes.
	if err := put(MediaBlockWords); err != nil {
		return written, err
	}
	if err := put(uint64(len(p.csums))); err != nil {
		return written, err
	}
	for b := range p.csums {
		if err := put(p.csums[b]); err != nil {
			return written, err
		}
	}
	quar := p.QuarantinedBlocks()
	if err := put(uint64(len(quar))); err != nil {
		return written, err
	}
	for _, b := range quar {
		if err := put(uint64(b)); err != nil {
			return written, err
		}
	}
	var deg uint64
	if p.degraded {
		deg = 1
	}
	if err := put(deg); err != nil {
		return written, err
	}
	return written, nil
}

// ReadPool deserializes a pool file. The current image starts equal to the
// durable one (a clean open after a crash). Structurally corrupt files and
// images failing the integrity check are rejected; use ReadPoolInspect to
// open a damaged image for forensics.
//
// Media corruption is special-cased: when block checksums mismatch, ReadPool
// returns the parsed pool AND a *MediaError (both non-nil) so the caller can
// run the scrubber against it and retry verification — see scrub.Repair.
func ReadPool(r io.Reader) (*Pool, error) {
	return readPool(r, true)
}

// ReadPoolInspect opens a pool file WITHOUT validating the formatted-pool
// magic or running the integrity check, so post-mortem tooling can examine
// corrupted images (the pmempool-info analogue). The container must still
// parse: truncated or non-pool files are rejected.
func ReadPoolInspect(r io.Reader) (*Pool, error) {
	return readPool(r, false)
}

func readPool(r io.Reader, strict bool) (*Pool, error) {
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrTruncatedImage, err)
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w (empty or short header)", ErrNotPoolFile)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w (magic %#x)", ErrNotPoolFile, magic)
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != fileVersion && version != fileVersionV2 && version != fileVersionV1 {
		return nil, fmt.Errorf("%w: version %d, want <= %d", ErrCorruptImage, version, fileVersion)
	}
	words64, err := get()
	if err != nil {
		return nil, err
	}
	words := int(words64)
	if words < 64 || words > 1<<32 {
		return nil, fmt.Errorf("%w: implausible pool size %d", ErrCorruptImage, words)
	}
	p := &Pool{
		words:       words,
		cur:         make([]uint64, words),
		durable:     make([]uint64, words),
		dirty:       map[uint64]struct{}{},
		sink:        obs.Nop(),
		fileVersion: int(version),
	}
	buf := make([]byte, 8*words)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w (durable image): %v", ErrTruncatedImage, err)
	}
	for i := range p.durable {
		p.durable[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	copy(p.cur, p.durable)

	if version >= 2 {
		// Stats section: a count guards forward evolution (newer writers
		// may append stats; older readers must skip what they don't know).
		statsN, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w (stats)", err)
		}
		if statsN > 64 {
			return nil, fmt.Errorf("%w: implausible stats section length %d", ErrCorruptImage, statsN)
		}
		vals := make([]uint64, statsN)
		for i := range vals {
			if vals[i], err = get(); err != nil {
				return nil, fmt.Errorf("%w (stats)", err)
			}
		}
		dst := []*uint64{
			&p.stats.Loads, &p.stats.Stores, &p.stats.Persists,
			&p.stats.PersistedWords.Words, &p.stats.Allocs, &p.stats.Frees,
			&p.stats.Crashes,
		}
		for i, d := range dst {
			if i < len(vals) {
				*d = vals[i]
			}
		}

		// Flight-recorder section.
		flightLen, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w (flight)", err)
		}
		if flightLen > maxFlightSection {
			return nil, fmt.Errorf("%w: implausible flight section length %d", ErrCorruptImage, flightLen)
		}
		if flightLen > 0 {
			fb := make([]byte, flightLen)
			if _, err := io.ReadFull(r, fb); err != nil {
				return nil, fmt.Errorf("%w (flight section): %v", ErrTruncatedImage, err)
			}
			fl, err := obs.UnmarshalFlight(fb)
			if err != nil {
				return nil, fmt.Errorf("%w: undecodable flight recorder: %v", ErrCorruptImage, err)
			}
			p.flight = fl
		}
	}

	if version >= 3 {
		// Media-checksum section.
		bw, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w (media)", err)
		}
		if bw != MediaBlockWords {
			return nil, fmt.Errorf("%w: media block size %d, want %d", ErrCorruptImage, bw, MediaBlockWords)
		}
		csumN, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w (media)", err)
		}
		if int(csumN) != p.mediaBlocks() {
			return nil, fmt.Errorf("%w: media checksum count %d, want %d", ErrCorruptImage, csumN, p.mediaBlocks())
		}
		p.csums = make([]uint64, csumN)
		p.verified = make([]bool, csumN)
		for b := range p.csums {
			if p.csums[b], err = get(); err != nil {
				return nil, fmt.Errorf("%w (media checksums)", err)
			}
		}
		quarN, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w (media)", err)
		}
		if quarN > csumN {
			return nil, fmt.Errorf("%w: implausible quarantine count %d", ErrCorruptImage, quarN)
		}
		for q := uint64(0); q < quarN; q++ {
			b, err := get()
			if err != nil {
				return nil, fmt.Errorf("%w (media quarantine)", err)
			}
			if b == 0 || b >= csumN {
				return nil, fmt.Errorf("%w: implausible quarantined block %d", ErrCorruptImage, b)
			}
			if p.quar == nil {
				p.quar = map[int]bool{}
			}
			p.quar[int(b)] = true
		}
		deg, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w (media)", err)
		}
		p.degraded = deg != 0
	} else {
		// Pre-v3 image: no seals on disk. Backfill by declaring the durable
		// image authoritative, exactly as New does.
		p.initMedia()
	}

	if strict {
		// Media verification comes FIRST: allocator recovery and the
		// integrity check write and walk metadata, which must not be trusted
		// (or modified) while any block's seal is broken. On corruption the
		// parsed pool is returned ALONGSIDE the error so callers can hand it
		// to the scrubber (internal/scrub) and retry.
		if merr := p.VerifyMedia(); merr != nil {
			return p, merr
		}
		if p.durable[hdrMagic] != magicValue {
			return nil, fmt.Errorf("%w: pool image not formatted (magic %#x)", ErrCorruptImage, p.durable[hdrMagic])
		}
		// Open-time recovery (the palloc-recovery analogue): repair the
		// allocator-metadata states an interrupted alloc/free legitimately
		// leaves behind, then insist the image checks out. Corruption the
		// block chain cannot explain stays a hard error.
		rec := p.RecoverMeta()
		if !rec.OK() {
			return nil, fmt.Errorf("%w: unrecoverable pool image: %v", ErrCorruptImage, rec)
		}
		if !rec.Clean() {
			p.recovery = rec
		}
		if rep := p.CheckIntegrity(); !rep.OK() {
			return nil, fmt.Errorf("%w: pool file failed integrity check: %v", ErrCorruptImage, rep)
		}
	}
	return p, nil
}
