package pmem

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Pool file persistence: the pmem_map_file analogue. A pool's DURABLE image
// can be serialized and reopened later — only durable state travels, so a
// save/load cycle has exactly crash semantics (unflushed stores are lost),
// and a pool file written by one process observes the same recovery
// obligations a DAX-mapped file would.

// fileMagic guards against feeding arbitrary files to Open.
const fileMagic uint64 = 0x41525448_504F4F4C // "ARTH POOL"

// fileVersion is bumped on incompatible layout changes.
const fileVersion uint64 = 1

// WriteTo serializes the durable image. It implements io.WriterTo.
func (p *Pool) WriteTo(w io.Writer) (int64, error) {
	var written int64
	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		n, err := w.Write(buf[:])
		written += int64(n)
		return err
	}
	if err := put(fileMagic); err != nil {
		return written, err
	}
	if err := put(fileVersion); err != nil {
		return written, err
	}
	if err := put(uint64(p.words)); err != nil {
		return written, err
	}
	buf := make([]byte, 8*len(p.durable))
	for i, word := range p.durable {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	n, err := w.Write(buf)
	written += int64(n)
	return written, err
}

// ReadPool deserializes a pool file. The current image starts equal to the
// durable one (a clean open after a crash).
func ReadPool(r io.Reader) (*Pool, error) {
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("pmem: reading pool file: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("pmem: not a pool file (magic %#x)", magic)
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != fileVersion {
		return nil, fmt.Errorf("pmem: pool file version %d, want %d", version, fileVersion)
	}
	words64, err := get()
	if err != nil {
		return nil, err
	}
	words := int(words64)
	if words < 64 || words > 1<<32 {
		return nil, fmt.Errorf("pmem: implausible pool size %d", words)
	}
	p := &Pool{
		words:   words,
		cur:     make([]uint64, words),
		durable: make([]uint64, words),
		dirty:   map[uint64]struct{}{},
	}
	buf := make([]byte, 8*words)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("pmem: truncated pool file: %w", err)
	}
	for i := range p.durable {
		p.durable[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	copy(p.cur, p.durable)
	if p.durable[hdrMagic] != magicValue {
		return nil, fmt.Errorf("pmem: pool image not formatted (magic %#x)", p.durable[hdrMagic])
	}
	if rep := p.CheckIntegrity(); !rep.OK() {
		return nil, fmt.Errorf("pmem: pool file failed integrity check: %v", rep)
	}
	return p, nil
}
