package pmem

import (
	"errors"
	"fmt"
	"sort"
)

// Media-fault layer: per-block checksums over the DURABLE image, a
// deterministic fault injector, and the repair/quarantine primitives the
// scrubber (internal/scrub) builds on.
//
// The durable image is divided into fixed media blocks of MediaBlockWords
// words. Every block carries one 64-bit checksum — the XOR of a position-
// keyed hash of each word — maintained incrementally by every write that
// goes through the durable-write path (Persist, PersistTx, allocator/root
// metadata, WriteDurable, checkpoint reversion). The XOR structure makes a
// single-word update O(1): the old contribution is XORed out and the new
// one in.
//
// Corruption model: InjectMediaFault mutates durable words WITHOUT
// maintaining the checksum — the simulator's stand-in for media errors,
// firmware stray writes, and DMA scribbles that change bits behind the
// memory controller's back. The mismatch is latched per block in the
// `verified` cache, so the read hot path pays a single branch; reads from a
// block whose seal is broken fail with ErrMediaCorrupt (the VM surfaces
// this as a media-corrupt trap, and the reactor scrubs-then-retries).
//
// InjectBitFlip (the paper's §2.4 hardware-fault model) deliberately stays
// checksum-transparent: it models a value corrupted BEFORE write-back, so
// the bad value was checksummed like any other store — exactly the class
// of fault only checkpoint-log reversion can heal. InjectMediaFault models
// corruption AFTER write-back, the class checksums do catch.

// MediaBlockWords is the checksum granularity, in words.
const MediaBlockWords = 64

// blockFiller marks an allocated block the allocator carved to skip a
// quarantined region during bump allocation. Fillers count as live words
// (keeping CheckIntegrity/RecoverMeta accounting exact) but were never
// handed to a program and never will be.
const blockFiller = uint64(1) << 61

// ErrMediaCorrupt reports a checksum mismatch between a media block's
// stored checksum and its durable contents. It is always wrapped in a
// *MediaError carrying the poisoned word ranges.
var ErrMediaCorrupt = errors.New("pmem: media corruption detected")

// MediaError is the typed media-corruption error: which word ranges (media
// blocks) failed checksum verification.
type MediaError struct {
	Ranges []Range
}

func (e *MediaError) Error() string {
	s := fmt.Sprintf("%v: %d poisoned block(s)", ErrMediaCorrupt, len(e.Ranges))
	for i, r := range e.Ranges {
		if i == 4 {
			s += fmt.Sprintf(" ... (+%d more)", len(e.Ranges)-i)
			break
		}
		s += " " + r.String()
	}
	return s
}

// Unwrap makes errors.Is(err, ErrMediaCorrupt) work.
func (e *MediaError) Unwrap() error { return ErrMediaCorrupt }

// mediaMix is the position-keyed word hash (splitmix64 finalizer over the
// word value offset by its pool index). XORing mixes over a block gives a
// checksum where any single-word change flips ~half the bits, and
// incremental maintenance is two mixes.
func mediaMix(i int, v uint64) uint64 {
	x := v + 0x9e3779b97f4a7c15*uint64(i+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mediaBlocks returns the number of media blocks covering the pool.
func (p *Pool) mediaBlocks() int {
	return (p.words + MediaBlockWords - 1) / MediaBlockWords
}

// MediaBlocks returns the number of checksummed media blocks.
func (p *Pool) MediaBlocks() int { return p.mediaBlocks() }

// MediaBlockOf returns the media block index covering addr (which must be
// inside the pool; see Contains).
func MediaBlockOf(addr uint64) int { return int(addr-Base) / MediaBlockWords }

// MediaBlockRange returns the word range covered by media block b, clipped
// to the pool size.
func (p *Pool) MediaBlockRange(b int) Range {
	start := b * MediaBlockWords
	words := MediaBlockWords
	if start+words > p.words {
		words = p.words - start
	}
	return Range{Addr: Base + uint64(start), Words: words}
}

// computeMediaChecksum recomputes block b's checksum from the durable image.
func (p *Pool) computeMediaChecksum(b int) uint64 {
	r := p.MediaBlockRange(b)
	start := int(r.Addr - Base)
	var sum uint64
	if p.base == nil {
		for w := 0; w < r.Words; w++ {
			sum ^= mediaMix(start+w, p.durable[start+w])
		}
		return sum
	}
	for w := 0; w < r.Words; w++ {
		sum ^= mediaMix(start+w, p.durAt(start+w))
	}
	return sum
}

// MediaChecksum returns the STORED checksum of media block b.
func (p *Pool) MediaChecksum(b int) uint64 { return p.csums[b] }

// DurableBlock copies media block b's durable words (the replication
// layer's block-fetch primitive; see BlockFetch). Returns nil when b is
// out of range.
func (p *Pool) DurableBlock(b int) []uint64 {
	if b < 0 || b >= p.mediaBlocks() {
		return nil
	}
	r := p.MediaBlockRange(b)
	start := int(r.Addr - Base)
	out := make([]uint64, r.Words)
	for w := range out {
		out[w] = p.durAt(start + w)
	}
	return out
}

// MediaBlockOK recomputes block b's checksum and compares it to the stored
// one, updating the verified cache.
func (p *Pool) MediaBlockOK(b int) bool {
	ok := p.computeMediaChecksum(b) == p.csums[b]
	p.verified[b] = ok
	return ok
}

// initMedia allocates and seals the checksum state for a freshly built pool
// whose durable image is authoritative (New, ReadPool of v1/v2 images).
func (p *Pool) initMedia() {
	n := p.mediaBlocks()
	p.csums = make([]uint64, n)
	p.verified = make([]bool, n)
	p.resealMediaAll()
}

// resealMediaAll recomputes every block checksum from the durable image and
// marks all blocks verified — declaring the current durable contents
// authoritative. Used when formatting, when backfilling checksums for
// pre-v3 images, and after bench-only maintenance toggling.
func (p *Pool) resealMediaAll() {
	for b := range p.csums {
		p.csums[b] = p.computeMediaChecksum(b)
		p.verified[b] = true
	}
}

// ResealMediaBlock recomputes block b's checksum from its current durable
// contents and marks it verified — accepting whatever is there as
// authoritative. The scrubber uses it when quarantining a block whose
// original contents cannot be reconstructed.
func (p *Pool) ResealMediaBlock(b int) {
	if b < 0 || b >= len(p.csums) {
		return
	}
	p.csums[b] = p.computeMediaChecksum(b)
	p.verified[b] = true
}

// mediaCheck is the read hot-path verification: one branch on the verified
// cache; on a cache miss the block checksum is recomputed. i is a word
// index already validated by index().
func (p *Pool) mediaCheck(i int) error {
	b := i / MediaBlockWords
	if p.verified[b] {
		return nil
	}
	if p.computeMediaChecksum(b) == p.csums[b] {
		p.verified[b] = true
		return nil
	}
	return &MediaError{Ranges: []Range{p.MediaBlockRange(b)}}
}

// VerifyMedia recomputes every media-block checksum against the stored
// values, refreshing the verified cache. It returns nil when the whole pool
// verifies, or a *MediaError listing every poisoned block range.
func (p *Pool) VerifyMedia() *MediaError {
	var bad []Range
	for b := range p.csums {
		if !p.MediaBlockOK(b) {
			bad = append(bad, p.MediaBlockRange(b))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return &MediaError{Ranges: bad}
}

// CorruptMediaBlocks returns the indices of blocks whose stored checksum
// does not match the durable contents, ascending.
func (p *Pool) CorruptMediaBlocks() []int {
	var out []int
	for b := range p.csums {
		if !p.MediaBlockOK(b) {
			out = append(out, b)
		}
	}
	return out
}

// SetMediaMaintenance toggles incremental checksum maintenance on the
// durable-write path. It exists ONLY as a measurement aid for arthas-bench
// (persist-path overhead with/without checksums): re-enabling reseals every
// block, so detection state is lost across the toggle.
func (p *Pool) SetMediaMaintenance(on bool) {
	p.nocsum = !on
	if on {
		p.resealMediaAll()
	}
}

// rawDurWrite writes durable word i WITHOUT checksum maintenance — the
// primitive behind fault injection and scrubber repairs.
func (p *Pool) rawDurWrite(i int, v uint64) {
	if p.base == nil {
		p.durable[i] = v
		return
	}
	p.durOv[i] = v
}

// RepairDurable rewrites one durable (and current) word WITHOUT updating
// the block checksum: the scrubber's write primitive. Keeping the stored
// checksum untouched is the point — after rewriting every word it has
// ground truth for, the scrubber recomputes the block checksum and a match
// against the UNTOUCHED stored value proves the block is back to its
// original contents.
func (p *Pool) RepairDurable(addr uint64, val uint64) error {
	i, err := p.index(addr)
	if err != nil {
		return err
	}
	p.rawDurWrite(i, val)
	p.setCurAt(i, val)
	delete(p.dirty, addr)
	return nil
}

// MediaFaultKind selects the injected corruption pattern.
type MediaFaultKind int

// Media-fault kinds (the Linux-PM study's media-error taxonomy).
const (
	// MediaBitFlip XORs Bits (default 1) into the word at Addr.
	MediaBitFlip MediaFaultKind = iota
	// MediaStuckWord forces Words words (default 1) starting at Addr to
	// Value — a stuck-at region.
	MediaStuckWord
	// MediaStrayWrite copies Words words (default 1) from Src into Addr —
	// a misdirected write landing in a neighboring allocation. Src == 0
	// defaults to the same offset one media block earlier.
	MediaStrayWrite
	// MediaBlockPoison scrambles the whole media block containing Addr
	// with a Seed-keyed deterministic pattern — an uncorrectable poisoned
	// page.
	MediaBlockPoison
)

var mediaFaultNames = [...]string{
	MediaBitFlip: "bit-flip", MediaStuckWord: "stuck-word",
	MediaStrayWrite: "stray-write", MediaBlockPoison: "block-poison",
}

func (k MediaFaultKind) String() string {
	if int(k) < len(mediaFaultNames) {
		return mediaFaultNames[k]
	}
	return fmt.Sprintf("media-fault(%d)", int(k))
}

// MediaFault describes one injected corruption. All fields are plain data,
// so fault schedules serialize into replayable seeds (internal/torture's
// -media mode).
type MediaFault struct {
	Kind MediaFaultKind
	// Addr is the first corrupted word.
	Addr uint64
	// Bits is the XOR mask for MediaBitFlip (0 = flip bit zero).
	Bits uint64
	// Words sizes MediaStuckWord / MediaStrayWrite runs (0 = 1).
	Words int
	// Value is the MediaStuckWord fill value.
	Value uint64
	// Src is the MediaStrayWrite source address (0 = one block earlier).
	Src uint64
	// Seed keys the MediaBlockPoison scramble pattern.
	Seed int64
}

// InjectMediaFault corrupts the durable (and current) image WITHOUT
// maintaining block checksums, then clears the verified cache for every
// affected block — deterministic, replayable media corruption. It returns
// the poisoned range. Injecting into a fork stays fork-local.
func (p *Pool) InjectMediaFault(f MediaFault) (Range, error) {
	i, err := p.index(f.Addr)
	if err != nil {
		return Range{}, err
	}
	n := f.Words
	if n <= 0 {
		n = 1
	}
	var r Range
	switch f.Kind {
	case MediaBitFlip:
		mask := f.Bits
		if mask == 0 {
			mask = 1
		}
		p.rawDurWrite(i, p.durAt(i)^mask)
		p.setCurAt(i, p.durAt(i))
		r = Range{Addr: f.Addr, Words: 1}
	case MediaStuckWord:
		if i+n > p.words {
			n = p.words - i
		}
		for w := 0; w < n; w++ {
			p.rawDurWrite(i+w, f.Value)
			p.setCurAt(i+w, f.Value)
		}
		r = Range{Addr: f.Addr, Words: n}
	case MediaStrayWrite:
		src := f.Src
		if src == 0 {
			if f.Addr >= Base+MediaBlockWords {
				src = f.Addr - MediaBlockWords
			} else {
				src = f.Addr + MediaBlockWords
			}
		}
		si, err := p.index(src)
		if err != nil {
			return Range{}, err
		}
		if i+n > p.words {
			n = p.words - i
		}
		if si+n > p.words {
			n = p.words - si
		}
		vals := make([]uint64, n)
		for w := 0; w < n; w++ {
			vals[w] = p.durAt(si + w)
		}
		for w := 0; w < n; w++ {
			p.rawDurWrite(i+w, vals[w])
			p.setCurAt(i+w, vals[w])
		}
		r = Range{Addr: f.Addr, Words: n}
	case MediaBlockPoison:
		b := i / MediaBlockWords
		r = p.MediaBlockRange(b)
		start := int(r.Addr - Base)
		for w := 0; w < r.Words; w++ {
			v := mediaMix(start+w, uint64(f.Seed)^0xDEAD_BEEF_F00D)
			p.rawDurWrite(start+w, v)
			p.setCurAt(start+w, v)
		}
	default:
		return Range{}, fmt.Errorf("pmem: unknown media fault kind %d", int(f.Kind))
	}
	for b := int(r.Addr-Base) / MediaBlockWords; b <= (int(r.Addr-Base)+r.Words-1)/MediaBlockWords; b++ {
		p.verified[b] = false
	}
	if p.obsOn {
		p.sink.Count("pmem.media_fault", 1)
		p.sink.Count("pmem.media_fault_words", int64(r.Words))
	}
	return r, nil
}

// QuarantineMediaBlock marks media block b as quarantined: its contents are
// resealed as-is (so reads stop failing) and the allocator never hands out
// words overlapping it again. Block 0 holds the pool header and cannot be
// quarantined — unrepairable header corruption degrades the pool instead
// (see SetMediaDegraded).
func (p *Pool) QuarantineMediaBlock(b int) error {
	if b < 0 || b >= p.mediaBlocks() {
		return fmt.Errorf("%w: media block %d", ErrOutOfBounds, b)
	}
	if b == 0 {
		return fmt.Errorf("pmem: media block 0 holds the pool header and cannot be quarantined")
	}
	if p.quar == nil {
		p.quar = map[int]bool{}
	}
	p.quar[b] = true
	p.ResealMediaBlock(b)
	if p.obsOn {
		p.sink.Count("pmem.media_quarantine", 1)
	}
	return nil
}

// IsQuarantined reports whether media block b is quarantined.
func (p *Pool) IsQuarantined(b int) bool { return p.quar[b] }

// QuarantinedBlocks returns the quarantined media block indices, ascending.
func (p *Pool) QuarantinedBlocks() []int {
	out := make([]int, 0, len(p.quar))
	for b := range p.quar {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// rangeQuarantined reports whether word range [i, i+words) overlaps any
// quarantined media block.
func (p *Pool) rangeQuarantined(i, words int) bool {
	if len(p.quar) == 0 || words <= 0 {
		return false
	}
	for b := i / MediaBlockWords; b <= (i+words-1)/MediaBlockWords; b++ {
		if p.quar[b] {
			return true
		}
	}
	return false
}

// MediaDegraded reports whether unrepairable corruption was found in the
// header media block: the pool still serves, but header-resident state
// (roots) may have been lost.
func (p *Pool) MediaDegraded() bool { return p.degraded }

// SetMediaDegraded latches the degraded flag (scrubber use).
func (p *Pool) SetMediaDegraded() { p.degraded = true }

// AllocHint tells media repair about a live allocation the caller's
// checkpoint log recorded: used to reconstruct block headers whose media
// block is poisoned.
type AllocHint struct {
	Addr  uint64
	Words int
}

// MediaRepair describes what happened to one corrupt media block.
type MediaRepair struct {
	Block         int
	Range         Range
	RepairedWords int  // words rewritten from ground truth
	Healed        bool // checksum verifies again: original contents restored
	Fetched       bool // healed from an external block source (replica)
	Quarantined   bool // unreconstructible: resealed and fenced off
	Degraded      bool // header block unreconstructible: resealed, pool degraded
}

// BlockFetch supplies a media block's words from outside the pool — a
// replica's durable image (internal/repl). It returns the full block
// (MediaBlockRange(b).Words words) and true, or false when unavailable.
type BlockFetch func(b int) ([]uint64, bool)

// RepairMedia is the repair engine behind scrub.Repair. For every corrupt
// media block it rewrites each word it has ground truth for — header
// constants, block headers reconstructed from the chain walk (assisted by
// allocation hints when the header itself is poisoned), and live payload
// words via lookup (the checkpoint log's newest checkpointed value). All
// repair writes are raw: the stored checksums stay untouched, so a block
// whose recomputed checksum matches afterwards has provably recovered its
// original contents and is marked verified. Blocks still mismatching are
// quarantined (or, for the header block, resealed with the pool marked
// degraded). The caller should run RecoverMeta + CheckIntegrity afterwards
// to rebuild derived allocator metadata.
func (p *Pool) RepairMedia(hints []AllocHint, lookup func(addr uint64) (uint64, bool)) []MediaRepair {
	return p.RepairMediaFrom(hints, lookup, nil)
}

// RepairMediaFrom is RepairMedia with a last-resort external block source:
// when the local reconstruction cannot reproduce a block's stored seal,
// the block is fetched from fetch (a replica's durable image) and
// committed ONLY when the stored checksum proves the fetched words are the
// block's original contents — the same proof rule local repair uses, so a
// stale or diverged replica can never corrupt the pool; its blocks simply
// fail the seal and the verdict falls through to quarantine as before.
func (p *Pool) RepairMediaFrom(hints []AllocHint, lookup func(addr uint64) (uint64, bool), fetch BlockFetch) []MediaRepair {
	corrupt := p.CorruptMediaBlocks()
	if len(corrupt) == 0 {
		return nil
	}
	isCorrupt := make(map[int]bool, len(corrupt))
	for _, b := range corrupt {
		isCorrupt[b] = true
	}
	hintAt := make(map[int]int, len(hints)) // header word index -> payload size
	maxExtent := heapStart
	for _, h := range hints {
		if i, err := p.index(h.Addr); err == nil && h.Words > 0 {
			hintAt[i-1] = h.Words
			if i+h.Words > maxExtent {
				maxExtent = i + h.Words
			}
		}
	}

	truth := map[int]uint64{
		hdrMagic: magicValue,
		hdrSize:  uint64(p.words),
	}

	// Reconstruct the block chain. heapNext itself may be poisoned: fall
	// back to walking sane headers when the stored value is implausible.
	heapNext := int(p.durAt(hdrHeapNext))
	rederiveNext := heapNext < heapStart || heapNext > p.words
	walkEnd := heapNext
	if rederiveNext {
		walkEnd = p.words
	}
	type span struct {
		hdr, size int
		flags     uint64
	}
	var spans []span
	chainOK := true
	i := heapStart
	for i < walkEnd {
		hdr := p.durAt(i)
		size := int(hdr & blockSizeMask)
		sane := size > 0 && i+1+size <= walkEnd
		if isCorrupt[i/MediaBlockWords] {
			// The header word itself sits in a poisoned block: prefer the
			// checkpoint log's allocation record over the stored bits.
			if n, ok := hintAt[i]; ok && i+1+n <= p.words {
				spans = append(spans, span{hdr: i, size: n, flags: blockAllocated})
				truth[i] = uint64(n) | blockAllocated
				i += 1 + n
				continue
			}
		}
		if !sane {
			if i >= maxExtent && (hdr == 0 || isCorrupt[i/MediaBlockWords]) {
				// Never-used space (or its poisoned remains): the chain ends
				// here. Past every hinted allocation, a zero word means the
				// bump allocator never reached this far; inside a corrupt
				// block the zero may have been scrambled, so accept the end
				// there too — the seal arbitration below proves or rejects
				// the resulting reconstruction.
				walkEnd = i
				break
			}
			chainOK = false
			break
		}
		spans = append(spans, span{hdr: i, size: size, flags: hdr &^ blockSizeMask})
		i += 1 + size
	}
	if rederiveNext && chainOK {
		truth[hdrHeapNext] = uint64(walkEnd)
	}

	// Root slots are checkpointed by SetRoot: the log is their ground truth
	// too (they live in block 0, outside any allocation span).
	if lookup != nil {
		for w := hdrRootBase; w < hdrRootBase+NumRoots; w++ {
			if !isCorrupt[w/MediaBlockWords] {
				continue
			}
			if v, ok := lookup(Base + uint64(w)); ok {
				truth[w] = v
			}
		}
	}

	// Live payload words inside corrupt blocks: the checkpoint log's
	// newest checkpointed value is the paper's repair source (§4.4 resync).
	if chainOK && lookup != nil {
		for _, s := range spans {
			if s.flags&blockAllocated == 0 {
				continue
			}
			for w := s.hdr + 1; w <= s.hdr+s.size; w++ {
				if !isCorrupt[w/MediaBlockWords] {
					continue
				}
				if v, ok := lookup(Base + uint64(w)); ok {
					truth[w] = v
				}
			}
		}
	}

	// Guessed truth: values we cannot prove from the log or the chain walk
	// but that hold for the common pool shape — reserved header words and
	// root slots are zero until used, allocator counters follow from the
	// chain, and heap space past the bump pointer was never written. Guesses
	// are applied ONLY when, combined with the certain truth, they reproduce
	// the block's original checksum exactly (seal arbitration below): a
	// wrong guess never overwrites a word that survived the fault.
	guess := map[int]uint64{}
	for w := hdrLiveWords + 1; w < hdrRootBase; w++ {
		guess[w] = 0
	}
	for w := hdrRootBase; w < hdrRootBase+NumRoots; w++ {
		guess[w] = 0
	}
	if chainOK {
		live := 0
		freeSpans := false
		for _, s := range spans {
			if s.flags&blockAllocated != 0 {
				live += s.size
			} else {
				freeSpans = true
			}
		}
		guess[hdrLiveWords] = uint64(live)
		if !freeSpans {
			// No freed spans in the chain: the free list must be empty.
			guess[hdrFreeHead] = 0
		}
		for w := walkEnd; w < p.words; w++ {
			if isCorrupt[w/MediaBlockWords] {
				guess[w] = 0
			}
		}
	}

	// Apply ground truth raw — only inside corrupt blocks, and only where
	// the durable value actually differs. Per block, first test whether the
	// certain truth overlaid with the guesses reproduces the stored seal: a
	// match PROVES the combined reconstruction is the original contents, so
	// the guesses commit too; otherwise only the certain truth is written
	// and the block is left for the quarantine/degrade verdict.
	repairedBy := map[int]int{}
	for _, b := range corrupt {
		r := p.MediaBlockRange(b)
		lo := int(r.Addr - Base)
		var sum uint64
		for w := lo; w < lo+r.Words; w++ {
			v := p.durAt(w)
			if tv, ok := truth[w]; ok {
				v = tv
			} else if gv, ok := guess[w]; ok {
				v = gv
			}
			sum ^= mediaMix(w, v)
		}
		useGuess := sum == p.csums[b]
		for w := lo; w < lo+r.Words; w++ {
			v, ok := truth[w]
			if !ok {
				if !useGuess {
					continue
				}
				if v, ok = guess[w]; !ok {
					continue
				}
			}
			if p.durAt(w) != v {
				p.rawDurWrite(w, v)
				p.setCurAt(w, v)
				delete(p.dirty, Base+uint64(w))
				repairedBy[b]++
			}
		}
	}

	// Verdict per block: a matching checksum proves full recovery; a block
	// the local reconstruction cannot prove gets one more chance from the
	// external source (seal-proven, see RepairMediaFrom); anything else is
	// fenced off.
	out := make([]MediaRepair, 0, len(corrupt))
	for _, b := range corrupt {
		mr := MediaRepair{Block: b, Range: p.MediaBlockRange(b), RepairedWords: repairedBy[b]}
		if !p.MediaBlockOK(b) && fetch != nil {
			if n := p.commitFetchedBlock(b, fetch); n > 0 {
				mr.RepairedWords += n
				mr.Fetched = true
			}
		}
		if p.MediaBlockOK(b) {
			mr.Healed = true
		} else if b == 0 {
			p.SetMediaDegraded()
			p.ResealMediaBlock(0)
			mr.Degraded = true
		} else {
			_ = p.QuarantineMediaBlock(b)
			mr.Quarantined = true
		}
		out = append(out, mr)
	}
	return out
}

// commitFetchedBlock tests whether the externally fetched contents of
// block b reproduce its stored seal, and commits them raw only on proof.
// Returns the number of words rewritten (0 = no proof, nothing touched).
func (p *Pool) commitFetchedBlock(b int, fetch BlockFetch) int {
	words, ok := fetch(b)
	if !ok {
		return 0
	}
	r := p.MediaBlockRange(b)
	if len(words) != r.Words {
		return 0
	}
	lo := int(r.Addr - Base)
	var sum uint64
	for w := 0; w < r.Words; w++ {
		sum ^= mediaMix(lo+w, words[w])
	}
	if sum != p.csums[b] {
		return 0
	}
	n := 0
	for w := 0; w < r.Words; w++ {
		if p.durAt(lo+w) != words[w] {
			p.rawDurWrite(lo+w, words[w])
			p.setCurAt(lo+w, words[w])
			delete(p.dirty, Base+uint64(lo+w))
			n++
		}
	}
	if p.obsOn {
		p.sink.Count("pmem.media_fetch_heal", 1)
		p.sink.Count("pmem.media_fetch_words", int64(n))
	}
	return n
}
