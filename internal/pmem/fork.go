package pmem

import (
	"fmt"

	"arthas/internal/obs"
)

// Copy-on-write pool forking.
//
// Speculative mitigation (see internal/reactor and docs/PARALLEL_MITIGATION.md)
// tries several candidate reversions concurrently. Each trial needs a pool it
// can revert, crash, and re-execute against without disturbing the real one —
// but copying the whole image per trial would cost O(pool) where a trial
// typically touches a handful of words. A fork therefore shares the base
// pool's images read-only and keeps its own writes in per-word overlays:
//
//   - reads consult the overlay first and fall through to the base image
//   - writes (stores, persists, allocator metadata, roots, reversions) land
//     only in the overlay
//   - Crash resets the fork's current view to its durable view, including
//     dirty words inherited from the base at fork time
//
// The winning trial's overlay is applied onto the base with Promote; losing
// forks are simply dropped. While any fork is alive the base must be treated
// as read-only (the usual speculation discipline): forks read base slices
// without locks, so concurrent base mutations would race.

// Fork returns a copy-on-write view of the pool. The fork starts with the
// base's exact current/durable state (including unpersisted dirty words, so
// a fork Crash loses them just as a base Crash would) but all subsequent
// mutations stay fork-local. Hooks, sink, and flight recorder do NOT travel:
// a fork starts with no hooks (callers wire a forked checkpoint log), the
// no-op sink (speculative work is dark by default; see reactor's per-worker
// recorders), and no flight recorder.
func (p *Pool) Fork() *Pool {
	f := &Pool{
		words:       p.words,
		base:        p,
		curOv:       make(map[int]uint64),
		durOv:       make(map[int]uint64),
		dirty:       make(map[uint64]struct{}, len(p.dirty)),
		stats:       p.stats,
		sink:        obs.Nop(),
		fileVersion: p.fileVersion,
		// Media state is copy-on-write at media-block granularity: the fork
		// starts from the base's checksums, verification cache, and
		// quarantine set (O(words/MediaBlockWords), far below O(pool)) and
		// maintains its own copies from then on — a media fault injected in
		// a fork never touches the base's seals.
		csums:    append([]uint64(nil), p.csums...),
		verified: append([]bool(nil), p.verified...),
		degraded: p.degraded,
		nocsum:   p.nocsum,
	}
	if len(p.quar) > 0 {
		f.quar = make(map[int]bool, len(p.quar))
		for b := range p.quar {
			f.quar[b] = true
		}
	}
	for a := range p.dirty {
		f.dirty[a] = struct{}{}
	}
	return f
}

// IsFork reports whether the pool is a copy-on-write fork of another pool.
func (p *Pool) IsFork() bool { return p.base != nil }

// Promote applies the fork's overlays onto its base pool: every word the
// fork wrote (current and durable), its dirty set, and its activity stats
// replace the base's. After Promote the base holds exactly the state the
// fork observed, and the fork should be discarded. Only call this when no
// sibling forks are still running (the speculation winner, after losers are
// settled). Promoting a non-fork is an error.
func (p *Pool) Promote() error {
	b := p.base
	if b == nil {
		return fmt.Errorf("pmem: Promote on a pool that is not a fork")
	}
	// Durable words are applied RAW (no incremental checksum maintenance)
	// and the fork's entire media state — checksums, verification cache,
	// quarantine set, degraded flag — is transplanted wholesale afterwards.
	// Going through setDurAt would re-seal each block around the new values,
	// which silently blesses any media fault injected inside the fork; the
	// transplant instead preserves the fork's exact seal state, so corruption
	// the fork carried stays detectable in the parent (VerifyMedia/Load will
	// flag it until a scrub re-verifies the blocks).
	for i, v := range p.durOv {
		b.rawDurWrite(i, v)
	}
	for i, v := range p.curOv {
		b.setCurAt(i, v)
	}
	copy(b.csums, p.csums)
	copy(b.verified, p.verified)
	b.quar = nil
	if len(p.quar) > 0 {
		b.quar = make(map[int]bool, len(p.quar))
		for blk := range p.quar {
			b.quar[blk] = true
		}
	}
	b.degraded = p.degraded
	b.dirty = make(map[uint64]struct{}, len(p.dirty))
	for a := range p.dirty {
		b.dirty[a] = struct{}{}
	}
	b.stats = p.stats
	if b.obsOn {
		b.sink.Count("pmem.promote", 1)
		b.sink.Count("pmem.promoted_words", int64(len(p.curOv)))
		b.sink.SetGauge("pmem.dirty_words", int64(len(b.dirty)))
	}
	return nil
}

// curAt reads word i of the current image through the overlay chain.
func (p *Pool) curAt(i int) uint64 {
	if p.base == nil {
		return p.cur[i]
	}
	if v, ok := p.curOv[i]; ok {
		return v
	}
	return p.base.curAt(i)
}

// setCurAt writes word i of the current image (overlay-local on forks).
func (p *Pool) setCurAt(i int, v uint64) {
	if p.base == nil {
		p.cur[i] = v
		return
	}
	p.curOv[i] = v
}

// durAt reads word i of the durable image through the overlay chain.
func (p *Pool) durAt(i int) uint64 {
	if p.base == nil {
		return p.durable[i]
	}
	if v, ok := p.durOv[i]; ok {
		return v
	}
	return p.base.durAt(i)
}

// setDurAt writes word i of the durable image (overlay-local on forks) and
// incrementally maintains the media checksum of the covering block: XOR-ing
// out the mix of the old value and XOR-ing in the mix of the new one keeps
// the block seal exact in O(1) per word (see media.go). Repair paths that
// must not trust the old durable value use rawDurWrite instead.
func (p *Pool) setDurAt(i int, v uint64) {
	if !p.nocsum && p.csums != nil {
		if old := p.durAt(i); old != v {
			p.csums[i/MediaBlockWords] ^= mediaMix(i, old) ^ mediaMix(i, v)
		}
	}
	if p.base == nil {
		p.durable[i] = v
		return
	}
	p.durOv[i] = v
}

// durView returns [i, i+words) of the durable image. Root pools return the
// backing slice (callers must not mutate and must not hold it across pool
// mutations); forks materialize a copy through the overlay.
func (p *Pool) durView(i, words int) []uint64 {
	if p.base == nil {
		return p.durable[i : i+words]
	}
	out := make([]uint64, words)
	for w := range out {
		out[w] = p.durAt(i + w)
	}
	return out
}

// DurableImage returns a copy of the durable word image — exactly the
// payload a power failure preserves, with none of the forensic sections
// (stats counters, flight buffer, media checksums) a serialized pool file
// carries. Equivalence checks compare this: two runs with identical durable
// state but different persist traffic must compare equal.
func (p *Pool) DurableImage() []uint64 {
	img := p.durImage()
	out := make([]uint64, len(img))
	copy(out, img)
	return out
}

// durImage returns the full durable image, materializing overlays for forks.
// Root pools return the backing slice; callers must treat it as read-only.
func (p *Pool) durImage() []uint64 {
	if p.base == nil {
		return p.durable
	}
	out := make([]uint64, p.words)
	copy(out, p.base.durImage())
	for i, v := range p.durOv {
		out[i] = v
	}
	return out
}
