package pmem

import (
	"errors"
	"sync"
	"testing"
)

// Fork crash semantics: a fork must be a perfect sandbox. Crash(),
// InjectBitFlip(alsoDurable=true), and injected crash latches on a fork may
// never reach the base pool, and Promote() after a fork-local crash must
// promote the post-crash state, not resurrect discarded volatile writes.

func snapshotPool(p *Pool) (cur, dur []uint64) {
	cur = make([]uint64, p.words)
	dur = make([]uint64, p.words)
	for i := 0; i < p.words; i++ {
		cur[i] = p.curAt(i)
		dur[i] = p.durAt(i)
	}
	return cur, dur
}

func assertUnchanged(t *testing.T, p *Pool, cur, dur []uint64, what string) {
	t.Helper()
	for i := 0; i < p.words; i++ {
		if p.curAt(i) != cur[i] {
			t.Fatalf("%s: base current word %d changed %d -> %d", what, i, cur[i], p.curAt(i))
		}
		if p.durAt(i) != dur[i] {
			t.Fatalf("%s: base durable word %d changed %d -> %d", what, i, dur[i], p.durAt(i))
		}
	}
}

func TestForkCrashDoesNotLeakIntoBase(t *testing.T) {
	base := New(256)
	a, _ := base.Alloc(4)
	base.Store(a, 10)
	base.Persist(a, 1)
	base.Store(a+1, 20) // dirty at fork time
	cur, dur := snapshotPool(base)
	dirtyBefore := base.DirtyWords()

	f := base.Fork()
	f.Store(a+2, 30)
	f.Persist(a+2, 1)
	f.Store(a+3, 40)
	f.Crash()

	assertUnchanged(t, base, cur, dur, "fork crash")
	if base.DirtyWords() != dirtyBefore {
		t.Fatalf("base dirty set changed: %d -> %d", dirtyBefore, base.DirtyWords())
	}
	// The fork lost its own unpersisted store AND the base's inherited dirty
	// word, but kept what it persisted.
	if v, _ := f.Load(a + 2); v != 30 {
		t.Fatalf("fork lost persisted word: %d", v)
	}
	if v, _ := f.Load(a + 3); v == 40 {
		t.Fatal("fork kept unpersisted store across crash")
	}
	if v, _ := f.Load(a + 1); v == 20 {
		t.Fatal("fork kept base's dirty word across crash")
	}
	// The base still observes its dirty word (it never crashed).
	if v, _ := base.Load(a + 1); v != 20 {
		t.Fatalf("base lost its own dirty word: %d", v)
	}
}

func TestForkBitFlipDoesNotLeakIntoBase(t *testing.T) {
	base := New(256)
	a, _ := base.Alloc(2)
	base.Store(a, 0xFF)
	base.Persist(a, 1)
	cur, dur := snapshotPool(base)

	f := base.Fork()
	if err := f.InjectBitFlip(a, 3, true); err != nil {
		t.Fatal(err)
	}
	assertUnchanged(t, base, cur, dur, "fork bit flip")
	if v, _ := f.Load(a); v != 0xFF^(1<<3) {
		t.Fatalf("fork did not observe its own flip: %#x", v)
	}
	fd, _ := f.ReadDurable(a)
	if fd != 0xFF^(1<<3) {
		t.Fatalf("fork durable flip missing: %#x", fd)
	}
}

func TestForkInjectedCrashDoesNotLatchBase(t *testing.T) {
	base := New(256)
	a, _ := base.Alloc(4)
	cur, dur := snapshotPool(base)

	f := base.Fork()
	f.Store(a, 1)
	f.Store(a+1, 2)
	f.SetCrashFunc(crashOnEvent(DurPersist, 0, 1))
	if err := f.Persist(a, 2); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("fork Persist = %v", err)
	}
	if !f.CrashLatched() {
		t.Fatal("fork not latched")
	}
	if base.CrashLatched() {
		t.Fatal("injected crash latched the BASE pool")
	}
	assertUnchanged(t, base, cur, dur, "fork injected crash")
	// The base remains fully operational.
	if err := base.Store(a, 7); err != nil {
		t.Fatal(err)
	}
	if err := base.Persist(a, 1); err != nil {
		t.Fatalf("base persist after fork latch: %v", err)
	}
}

func TestForkPromoteAfterCrashDropsVolatileState(t *testing.T) {
	base := New(256)
	a, _ := base.Alloc(4)
	base.Store(a, 1) // dirty in base at fork time

	f := base.Fork()
	f.Store(a+1, 11)
	f.Persist(a+1, 1)
	f.Store(a+2, 22) // never persisted
	f.Crash()
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	// Promoted state is the POST-crash state: persisted survives, the fork's
	// unpersisted store and the base's old dirty word are gone.
	if v, _ := base.Load(a + 1); v != 11 {
		t.Fatalf("promoted persisted word = %d", v)
	}
	if v, _ := base.Load(a + 2); v == 22 {
		t.Fatal("promote resurrected the fork's discarded volatile store")
	}
	if v, _ := base.Load(a); v == 1 {
		t.Fatal("promote resurrected the base's pre-fork dirty word")
	}
	if base.DirtyWords() != 0 {
		t.Fatalf("promoted pool has %d dirty words after fork crash", base.DirtyWords())
	}
}

func TestForkIsolationUnderConcurrency(t *testing.T) {
	// Many forks concurrently storing, persisting, allocating, bit-flipping,
	// crashing, and latching — while the base is only read. Run under -race
	// (CI does) this also proves forks never write base state.
	base := New(1024)
	a, _ := base.Alloc(8)
	for w := uint64(0); w < 8; w++ {
		base.Store(a+w, 1000+w)
	}
	base.Persist(a, 8)
	cur, dur := snapshotPool(base)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := base.Fork()
			for i := 0; i < 50; i++ {
				b, err := f.Alloc(2)
				if err != nil {
					return
				}
				f.Store(b, uint64(g*1000+i))
				f.Persist(b, 1)
				f.InjectBitFlip(b, uint(i%64), i%2 == 0)
				if i%10 == 9 {
					f.Crash()
				}
				if i%25 == 24 {
					f.SetCrashFunc(crashOnEvent(DurPersist, 0, 0))
					f.Persist(b, 1) // latches the fork
					f.SetCrashFunc(nil)
					f.Crash()
					f.ResetCrashLatch()
				}
			}
		}(g)
	}
	wg.Wait()
	assertUnchanged(t, base, cur, dur, "concurrent forks")
	if base.CrashLatched() {
		t.Fatal("a fork's latch reached the base")
	}
	if rep := base.CheckIntegrity(); !rep.OK() {
		t.Fatalf("base inconsistent after concurrent fork abuse: %v", rep)
	}
}
