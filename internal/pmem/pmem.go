// Package pmem simulates byte-addressable persistent memory with an explicit
// durability model.
//
// The simulator reproduces the semantics that Arthas's checkpointing depends
// on, without requiring real PM DIMMs:
//
//   - A pool is an array of 64-bit words addressed at [Base, Base+Words).
//   - Stores update the *current* image only. They are NOT durable.
//   - Persist (the pmem_persist / clwb+sfence analogue) copies a range of the
//     current image into the *durable* image.
//   - Crash discards the current image and rebuilds it from the durable one,
//     so unflushed stores are lost — exactly the property PM crash-consistency
//     work is about.
//   - A persistent allocator (the pmemobj_zalloc analogue) lives inside the
//     pool; its metadata is made durable on every alloc/free so the heap
//     survives crashes, mirroring PMDK's internally-atomic allocator.
//   - Root slots (the pmemobj_root analogue) give programs a durable entry
//     point to find their data after restart.
//
// All addresses and sizes are in 64-bit words, not bytes. This keeps pointer
// arithmetic in the PML virtual machine trivial while preserving everything
// that matters for fault propagation: a corrupted pointer still traps, a
// corrupted length still overflows, a leaked object still consumes space.
package pmem

import (
	"errors"
	"fmt"

	"arthas/internal/obs"
)

// Base is the virtual address of the first pool word. Volatile heap addresses
// used by the VM are far below it, so PM and DRAM pointers are distinguishable
// by value, like DAX-mapped regions in real deployments.
const Base uint64 = 1 << 40

// Word counts for the persistent pool header layout.
const (
	hdrMagic     = 0 // magic value identifying an initialized pool
	hdrSize      = 1 // pool size in words
	hdrHeapNext  = 2 // bump pointer: next never-allocated word index
	hdrFreeHead  = 3 // head of the free list (0 = empty)
	hdrLiveWords = 4 // payload words currently allocated
	hdrRootBase  = 8 // first of NumRoots root slots

	// NumRoots is the number of durable root slots a pool provides.
	NumRoots = 16

	heapStart = hdrRootBase + NumRoots // first heap word index
)

const magicValue = 0x41525448_41530001 // "ARTHAS" v1

// Allocation block header flags (stored in the word before each payload).
const (
	blockAllocated = uint64(1) << 62
	blockSizeMask  = (uint64(1) << 32) - 1
)

// Errors reported by pool operations. The VM converts these into traps with
// the same flavor as the corresponding process-level failures (segfault,
// out-of-space, heap corruption).
var (
	ErrOutOfBounds   = errors.New("pmem: address out of pool bounds")
	ErrOutOfSpace    = errors.New("pmem: out of persistent memory")
	ErrBadFree       = errors.New("pmem: free of non-allocated address")
	ErrBadRoot       = errors.New("pmem: root slot out of range")
	ErrCorruptHeader = errors.New("pmem: corrupt allocation header")
)

// Range identifies a contiguous run of pool words by absolute address.
type Range struct {
	Addr  uint64 // absolute address (>= Base)
	Words int
}

func (r Range) String() string { return fmt.Sprintf("[%#x,+%d)", r.Addr, r.Words) }

// Overlaps reports whether two ranges share any word.
func (r Range) Overlaps(o Range) bool {
	return r.Addr < o.Addr+uint64(o.Words) && o.Addr < r.Addr+uint64(r.Words)
}

// Hooks receive notifications about durability events. The Arthas checkpoint
// library implements them; a nil hook is skipped. Hooks fire only when data
// actually becomes durable (the paper's "eager checkpointing ... respects the
// program's persistence points", §4.2).
type Hooks struct {
	// OnPersist is called after a range is made durable outside any
	// transaction. data aliases internal storage only for the duration of
	// the call; implementations must copy.
	OnPersist func(addr uint64, data []uint64)
	// OnTxBegin/OnTxCommit bracket the OnPersist calls issued by a
	// transaction commit, so the checkpoint log can group entries that
	// must be reverted together.
	OnTxBegin  func()
	OnTxCommit func()
	// OnAlloc/OnFree observe allocator activity (used for leak mitigation).
	OnAlloc func(addr uint64, words int)
	OnFree  func(addr uint64, words int)
	// OnZero fires after Zalloc has zeroed AND persisted a fresh payload:
	// the range is durably zero at that point (provenance uses this as the
	// redundant-persist baseline). Raw Alloc does not fire it.
	OnZero func(addr uint64, words int)
}

// Pool is a simulated persistent memory pool. A pool is either a root pool
// (backed by its own cur/durable slices) or a copy-on-write fork of another
// pool (see Fork): forks keep base == the forked pool and record their writes
// in the curOv/durOv overlays instead of slices of their own.
type Pool struct {
	words   int
	cur     []uint64 // what loads observe (root pools only)
	durable []uint64 // what survives Crash (root pools only)
	dirty   map[uint64]struct{}

	// Copy-on-write forking (nil/unused on root pools).
	base  *Pool          // pool this one was forked from
	curOv map[int]uint64 // fork-local current-image writes
	durOv map[int]uint64 // fork-local durable-image writes

	hooks Hooks

	// statistics
	stats Stats

	// flight, when attached, is serialized into the pool image by WriteTo
	// and recovered by ReadPool: the telemetry tail survives crashes the
	// same way durable data does. The pool does not feed it directly — it
	// is wired in as a Sink by the arthas facade.
	flight *obs.Flight

	// fileVersion records which pool-file format this pool was read from
	// (fileVersion for pools created by New).
	fileVersion int

	// sink receives durability telemetry; obsOn caches sink.Enabled() so
	// the hot load/store paths pay one predictable branch when disabled.
	sink  obs.Sink
	obsOn bool

	// Crash injection (internal/torture): crashFn observes durability
	// events and may latch the pool mid-event; once crashLatched, nothing
	// further becomes durable and durability hooks stay silent. See
	// inject.go.
	crashFn      CrashFunc
	crashLatched bool

	// recovery records the open-time RecoverMeta report when the strict
	// reader had to repair allocator metadata (nil when the open was clean).
	recovery *RecoverReport

	// Media-fault layer (media.go). csums holds one checksum per
	// MediaBlockWords-word block of the durable image, maintained
	// incrementally by setDurAt; verified caches per-block verification so
	// the read hot path pays one branch; quar fences blocks the scrubber
	// could not repair away from the allocator; degraded latches
	// unrepairable header-block corruption; nocsum is the bench-only
	// maintenance toggle. Forks carry their own copies (Fork), and Promote
	// transplants them wholesale so fork-injected corruption stays
	// detectable in the parent.
	csums    []uint64
	verified []bool
	quar     map[int]bool
	degraded bool
	nocsum   bool
}

// LastRecovery returns the open-time recovery report, or nil if the pool
// opened clean (or was not opened from a file).
func (p *Pool) LastRecovery() *RecoverReport { return p.recovery }

// Stats counts pool activity since creation. Stats are not durable state,
// but pool files (format v2) carry them so post-mortem tooling can see how
// much activity preceded a save; a freshly created pool starts at zero.
type Stats struct {
	Loads    uint64
	Stores   uint64
	Persists uint64
	PersistedWords
	Allocs  uint64
	Frees   uint64
	Crashes uint64
}

// PersistedWords tallies how many words were made durable.
type PersistedWords struct{ Words uint64 }

// New creates a pool with the given number of heap-addressable words
// (minimum 64) and formats its persistent header.
func New(words int) *Pool {
	if words < 64 {
		words = 64
	}
	p := &Pool{
		words:       words,
		cur:         make([]uint64, words),
		durable:     make([]uint64, words),
		dirty:       make(map[uint64]struct{}),
		sink:        obs.Nop(),
		fileVersion: int(fileVersion),
	}
	p.initMedia()
	p.cur[hdrMagic] = magicValue
	p.cur[hdrSize] = uint64(words)
	p.cur[hdrHeapNext] = heapStart
	p.cur[hdrFreeHead] = 0
	p.cur[hdrLiveWords] = 0
	p.persistMeta(0, heapStart)
	return p
}

// SetHooks installs durability hooks, replacing any previous ones.
func (p *Pool) SetHooks(h Hooks) { p.hooks = h }

// SetSink installs an observability sink (nil restores the no-op).
func (p *Pool) SetSink(s obs.Sink) {
	p.sink = obs.OrNop(s)
	p.obsOn = p.sink.Enabled()
}

// HooksInstalled reports whether any persist hook is present.
func (p *Pool) HooksInstalled() bool { return p.hooks.OnPersist != nil }

// AttachFlight associates a flight recorder with the pool: WriteTo embeds
// its event tail in the pool image and ReadPool recovers it. Attach does
// NOT route pool telemetry into f — install it as (part of) the pool's
// Sink for that.
func (p *Pool) AttachFlight(f *obs.Flight) { p.flight = f }

// Flight returns the attached (or recovered) flight recorder, nil if none.
func (p *Pool) Flight() *obs.Flight { return p.flight }

// FormatVersion reports the pool-file format this pool was read from
// (the current format for pools created by New).
func (p *Pool) FormatVersion() int { return p.fileVersion }

// Words returns the pool size in words.
func (p *Pool) Words() int { return p.words }

// Stats returns a copy of the activity counters.
func (p *Pool) Stats() Stats { return p.stats }

// Contains reports whether addr names a word inside the pool.
func (p *Pool) Contains(addr uint64) bool {
	return addr >= Base && addr < Base+uint64(p.words)
}

func (p *Pool) index(addr uint64) (int, error) {
	if !p.Contains(addr) {
		return 0, fmt.Errorf("%w: %#x", ErrOutOfBounds, addr)
	}
	return int(addr - Base), nil
}

// Load reads one word from the current image.
func (p *Pool) Load(addr uint64) (uint64, error) {
	i, err := p.index(addr)
	if err != nil {
		return 0, err
	}
	// Media verification: one branch on the verified cache; a block whose
	// checksum seal is broken fails the read with ErrMediaCorrupt.
	if err := p.mediaCheck(i); err != nil {
		return 0, err
	}
	p.stats.Loads++
	if p.obsOn {
		p.sink.Count("pmem.load", 1)
	}
	return p.curAt(i), nil
}

// Store writes one word to the current image. The write is volatile until a
// Persist covering it succeeds.
func (p *Pool) Store(addr uint64, val uint64) error {
	i, err := p.index(addr)
	if err != nil {
		return err
	}
	p.stats.Stores++
	p.setCurAt(i, val)
	p.dirty[addr] = struct{}{}
	if p.obsOn {
		p.sink.Count("pmem.store", 1)
		p.sink.SetGauge("pmem.dirty_words", int64(len(p.dirty)))
	}
	return nil
}

// Persist makes [addr, addr+words) durable and fires the persist hook.
// It is the pmem_persist / clwb;sfence analogue. An injected crash mid-
// flush leaves only a prefix of the range durable and suppresses the hook
// (the checkpoint log never learns of a persist that did not complete).
func (p *Pool) Persist(addr uint64, words int) error {
	if err := p.makeDurable(addr, words, DurPersist); err != nil {
		return err
	}
	if p.hooks.OnPersist != nil {
		i := int(addr - Base)
		p.hooks.OnPersist(addr, p.durView(i, words))
	}
	return nil
}

// PersistTx makes every range durable as one atomic transaction commit,
// firing tx-bracketed hooks. It is the libpmemobj TX_COMMIT analogue: the
// caller (VM or native program) tracked the write-set. An injected crash
// mid-commit leaves a prefix of the ranges durable (the last possibly torn)
// with hooks fired only for the completed ranges and no commit bracket —
// exactly the partially-committed transaction state a power failure at a
// tx-commit boundary produces.
func (p *Pool) PersistTx(ranges []Range) error {
	for _, r := range ranges {
		if _, err := p.index(r.Addr); err != nil {
			return err
		}
		if r.Words < 0 || int(r.Addr-Base)+r.Words > p.words {
			return fmt.Errorf("%w: %v", ErrOutOfBounds, r)
		}
	}
	if p.crashLatched {
		return ErrCrashInjected
	}
	if p.hooks.OnTxBegin != nil {
		p.hooks.OnTxBegin()
	}
	for _, r := range ranges {
		if err := p.makeDurable(r.Addr, r.Words, DurTxRange); err != nil {
			return err
		}
		if p.hooks.OnPersist != nil {
			i := int(r.Addr - Base)
			p.hooks.OnPersist(r.Addr, p.durView(i, r.Words))
		}
	}
	if p.hooks.OnTxCommit != nil {
		p.hooks.OnTxCommit()
	}
	return nil
}

func (p *Pool) makeDurable(addr uint64, words int, kind DurKind) error {
	i, err := p.index(addr)
	if err != nil {
		return err
	}
	if words < 0 || i+words > p.words {
		return fmt.Errorf("%w: %v", ErrOutOfBounds, Range{addr, words})
	}
	if p.crashLatched {
		return ErrCrashInjected
	}
	// A crash hook may latch the pool here, truncating the event to its
	// first `words` (possibly zero) words — a torn flush.
	words = p.offerCrash(kind, addr, words)
	p.stats.Persists++
	p.stats.PersistedWords.Words += uint64(words)
	for w := 0; w < words; w++ {
		p.setDurAt(i+w, p.curAt(i+w))
	}
	for w := 0; w < words; w++ {
		delete(p.dirty, addr+uint64(w))
	}
	if p.obsOn {
		p.sink.Count("pmem.persist", 1)
		p.sink.Count("pmem.persisted_words", int64(words))
		p.sink.SetGauge("pmem.dirty_words", int64(len(p.dirty)))
	}
	if p.crashLatched {
		return ErrCrashInjected
	}
	return nil
}

// persistMeta makes allocator/header metadata durable WITHOUT firing hooks:
// allocator internals are not program state and must not pollute the
// checkpoint log (PMDK similarly hides its internal writes). Metadata
// updates are durability events too — an injected crash can tear them,
// which is how the harness reaches the allocator's crash windows.
func (p *Pool) persistMeta(idx, words int) {
	if p.crashLatched {
		return
	}
	words = p.offerCrash(DurMeta, Base+uint64(idx), words)
	for w := 0; w < words; w++ {
		p.setDurAt(idx+w, p.curAt(idx+w))
	}
	for w := 0; w < words; w++ {
		delete(p.dirty, Base+uint64(idx+w))
	}
}

// DirtyWords returns the number of stored-but-unpersisted words.
func (p *Pool) DirtyWords() int { return len(p.dirty) }

// Crash simulates a power failure / process kill: all unflushed stores are
// lost and the current image is rebuilt from the durable one.
func (p *Pool) Crash() {
	p.stats.Crashes++
	if p.obsOn {
		p.sink.Count("pmem.crash", 1)
		p.sink.Count("pmem.crash_lost_words", int64(len(p.dirty)))
		p.sink.SetGauge("pmem.dirty_words", 0)
	}
	if p.base == nil {
		copy(p.cur, p.durable)
	} else {
		// Reset every fork-local current word to the durable view, and mask
		// dirty words inherited from the base (stores the base had not yet
		// persisted at fork time) the same way — a fork crash must lose them
		// without touching the base's images.
		for i := range p.curOv {
			p.curOv[i] = p.durAt(i)
		}
		for a := range p.dirty {
			i := int(a - Base)
			p.curOv[i] = p.durAt(i)
		}
	}
	p.dirty = make(map[uint64]struct{})
}

// SetRoot durably records addr in root slot i.
func (p *Pool) SetRoot(i int, addr uint64) error {
	if i < 0 || i >= NumRoots {
		return fmt.Errorf("%w: %d", ErrBadRoot, i)
	}
	if p.crashLatched {
		return ErrCrashInjected
	}
	p.setCurAt(hdrRootBase+i, addr)
	p.persistMeta(hdrRootBase+i, 1)
	if p.crashLatched {
		return ErrCrashInjected
	}
	// Root slots are program data (the durable entry points), not derived
	// allocator state: checkpoint them like any other persist so reversion
	// and the media scrubber have ground truth for them.
	if p.hooks.OnPersist != nil {
		p.hooks.OnPersist(Base+uint64(hdrRootBase+i), p.durView(hdrRootBase+i, 1))
	}
	return nil
}

// Root returns the address stored in root slot i (0 if never set).
func (p *Pool) Root(i int) (uint64, error) {
	if i < 0 || i >= NumRoots {
		return 0, fmt.Errorf("%w: %d", ErrBadRoot, i)
	}
	return p.curAt(hdrRootBase + i), nil
}

// InjectBitFlip flips bit (0..63) of the word at addr in BOTH images,
// simulating a hardware fault that was persisted (paper §2.4 "Hardware
// Faults"). Flipping only the current image simulates a transient fault.
// The flip goes through the checksum-maintaining write path: it models a
// value corrupted BEFORE write-back, which media checksums cannot catch —
// use InjectMediaFault (media.go) for post-write-back corruption that the
// scrubber detects and repairs.
func (p *Pool) InjectBitFlip(addr uint64, bit uint, alsoDurable bool) error {
	i, err := p.index(addr)
	if err != nil {
		return err
	}
	p.setCurAt(i, p.curAt(i)^(1<<(bit&63)))
	if alsoDurable {
		p.setDurAt(i, p.durAt(i)^(1<<(bit&63)))
	}
	return nil
}

// WriteDurable overwrites one durable (and current) word directly. It is the
// primitive the Arthas reactor uses to revert a checkpointed value: reversion
// must itself be durable or the next crash would undo it.
func (p *Pool) WriteDurable(addr uint64, val uint64) error {
	i, err := p.index(addr)
	if err != nil {
		return err
	}
	p.setCurAt(i, val)
	p.setDurAt(i, val)
	delete(p.dirty, addr)
	return nil
}

// ReadDurable reads one word from the durable image.
func (p *Pool) ReadDurable(addr uint64) (uint64, error) {
	i, err := p.index(addr)
	if err != nil {
		return 0, err
	}
	return p.durAt(i), nil
}
