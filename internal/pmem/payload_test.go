package pmem

import "testing"

func TestInAllocatedPayload(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(4)
	b, _ := p.Alloc(4)

	// Header/root region counts as writable state.
	if !p.InAllocatedPayload(Base + 2) {
		t.Error("header region should be payload-writable")
	}
	// Live payload words.
	for w := uint64(0); w < 4; w++ {
		if !p.InAllocatedPayload(a + w) {
			t.Errorf("live word a+%d not recognized", w)
		}
	}
	// Block headers are not payload.
	if p.InAllocatedPayload(a - 1) {
		t.Error("block header recognized as payload")
	}
	// Freed blocks are not payload.
	p.Free(a)
	if p.InAllocatedPayload(a) {
		t.Error("freed word recognized as payload")
	}
	if !p.InAllocatedPayload(b) {
		t.Error("unrelated live block affected by free")
	}
	// Out-of-pool and never-allocated space.
	if p.InAllocatedPayload(123) {
		t.Error("non-pool address accepted")
	}
	if p.InAllocatedPayload(Base + 500) {
		t.Error("never-allocated heap space accepted")
	}
}

func TestInAllocatedPayloadAfterReuse(t *testing.T) {
	p := New(512)
	a, _ := p.Alloc(6)
	p.Free(a)
	c, _ := p.Alloc(6) // reuses a's block
	if c != a {
		t.Skip("allocator did not reuse")
	}
	if !p.InAllocatedPayload(a + 3) {
		t.Error("reused block payload not recognized")
	}
}
