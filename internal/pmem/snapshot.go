package pmem

import "fmt"

// Snapshot is a point-in-time copy of a pool's durable image. It is the unit
// of checkpointing for the pmCRIU baseline: coarse-grained, whole-pool, taken
// periodically — as opposed to Arthas's per-update checkpoint log.
type Snapshot struct {
	// Seq is caller-assigned ordering metadata (e.g. logical time taken).
	Seq uint64
	// Durable is the full durable image at snapshot time.
	Durable []uint64
}

// TakeSnapshot copies the durable image. Unpersisted (dirty) stores are
// intentionally not captured: a process-level checkpointer sees only what the
// target made durable.
func (p *Pool) TakeSnapshot(seq uint64) *Snapshot {
	d := make([]uint64, p.words)
	copy(d, p.durImage())
	return &Snapshot{Seq: seq, Durable: d}
}

// RestoreSnapshot replaces both images with the snapshot contents, as a
// coarse rollback does. The pool sizes must match.
func (p *Pool) RestoreSnapshot(s *Snapshot) error {
	if len(s.Durable) != p.words {
		return fmt.Errorf("pmem: snapshot size %d != pool size %d", len(s.Durable), p.words)
	}
	if p.base == nil {
		copy(p.durable, s.Durable)
		copy(p.cur, s.Durable)
	} else {
		for i, w := range s.Durable {
			p.setDurAt(i, w)
			p.setCurAt(i, w)
		}
	}
	p.dirty = make(map[uint64]struct{})
	return nil
}

// DiffWords counts durable words that differ between the pool and a snapshot.
// Experiments use it to quantify how much state a coarse rollback discards.
func (p *Pool) DiffWords(s *Snapshot) int {
	if len(s.Durable) != p.words {
		return p.words
	}
	n := 0
	for i, w := range p.durImage() {
		if w != s.Durable[i] {
			n++
		}
	}
	return n
}
