package pmem

import (
	"errors"
	"testing"
)

// crashThenRecover crashes the pool (discarding volatile state), clears the
// injection hook and latch, and runs open-time recovery — the sequence a
// real reopen performs.
func crashThenRecover(t *testing.T, p *Pool) *RecoverReport {
	t.Helper()
	p.SetCrashFunc(nil)
	p.Crash()
	p.ResetCrashLatch()
	rec := p.RecoverMeta()
	if !rec.OK() {
		t.Fatalf("recovery fatal: %v", rec)
	}
	return rec
}

func TestRecoverFreeHeadWindow(t *testing.T) {
	// Crash between Free's header flip and the free-list head relink: the
	// block is durably marked free but unreachable from the list.
	p := New(256)
	a, _ := p.Alloc(4)
	b, _ := p.Alloc(4)
	p.Free(a) // a legitimate free list to damage around
	p.SetCrashFunc(crashOnEvent(DurMeta, 0, 2))
	if err := p.Free(b); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Free = %v, want ErrCrashInjected", err)
	}
	rec := crashThenRecover(t, p)
	if rec.Clean() {
		t.Fatal("recovery found nothing to fix in the free-head crash window")
	}
	if rep := p.CheckIntegrity(); !rep.OK() {
		t.Fatalf("pool still inconsistent after recovery: %v", rep)
	}
	// Both blocks are allocatable again.
	if _, err := p.Alloc(4); err != nil {
		t.Fatalf("alloc after recovery: %v", err)
	}
	if _, err := p.Alloc(4); err != nil {
		t.Fatalf("second alloc after recovery: %v", err)
	}
}

func TestRecoverTornFreeLink(t *testing.T) {
	// Tear Free's two-word header+link persist after 1 word: the header says
	// "free" but the link word still holds old payload bits.
	p := New(256)
	a, _ := p.Alloc(4)
	p.Store(a, 0xDEAD) // stale payload that will masquerade as a link
	p.Persist(a, 1)
	p.SetCrashFunc(crashOnEvent(DurMeta, 0, 1))
	if err := p.Free(a); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Free = %v", err)
	}
	rec := crashThenRecover(t, p)
	if rec.Clean() {
		t.Fatal("recovery missed the torn free-link state")
	}
	if rep := p.CheckIntegrity(); !rep.OK() {
		t.Fatalf("pool still inconsistent: %v", rep)
	}
}

func TestRecoverLiveWordsWindow(t *testing.T) {
	// Crash after the bump allocation is durable but before the live-words
	// counter update.
	p := New(256)
	p.SetCrashFunc(crashOnEvent(DurMeta, 2, 0)) // events: header, heapNext, liveWords
	if _, err := p.Alloc(4); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Alloc = %v, want ErrCrashInjected", err)
	}
	rec := crashThenRecover(t, p)
	found := false
	for _, f := range rec.Fixed {
		if len(f) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("live-words mismatch not repaired: %v", rec)
	}
	if rep := p.CheckIntegrity(); !rep.OK() {
		t.Fatalf("pool still inconsistent: %v", rep)
	}
}

func TestRecoverAllocSplitWindows(t *testing.T) {
	// Exercise every meta-event crash point inside a splitting allocation
	// (free-list first fit) and verify recovery heals each one.
	for point := 0; point < 6; point++ {
		p := New(512)
		a, _ := p.Alloc(16)
		p.Free(a) // big free block the next alloc will split
		p.SetCrashFunc(crashOnEvent(DurMeta, point, 0))
		_, err := p.Alloc(4)
		p.SetCrashFunc(nil)
		if err == nil {
			// Fewer crash points than `point`: allocation completed; the
			// pool must simply be consistent.
			if rep := p.CheckIntegrity(); !rep.OK() {
				t.Fatalf("point %d: completed alloc left damage: %v", point, rep)
			}
			continue
		}
		if !errors.Is(err, ErrCrashInjected) {
			t.Fatalf("point %d: Alloc = %v", point, err)
		}
		rec := crashThenRecover(t, p)
		if rep := p.CheckIntegrity(); !rep.OK() {
			t.Fatalf("point %d: still inconsistent after recovery (%v): %v", point, rec, rep)
		}
		// The heap must remain usable.
		if _, err := p.Alloc(2); err != nil {
			t.Fatalf("point %d: alloc after recovery: %v", point, err)
		}
	}
}

func TestRecoverTornFreeEverySplit(t *testing.T) {
	// Torn variants: each meta event in Free torn at every possible width.
	for point := 0; point < 3; point++ {
		for keep := 0; keep <= 2; keep++ {
			p := New(256)
			a, _ := p.Alloc(4)
			p.SetCrashFunc(crashOnEvent(DurMeta, point, keep))
			err := p.Free(a)
			p.SetCrashFunc(nil)
			if err != nil && !errors.Is(err, ErrCrashInjected) {
				t.Fatalf("point %d keep %d: Free = %v", point, keep, err)
			}
			if err == nil {
				continue
			}
			crashThenRecover(t, p)
			if rep := p.CheckIntegrity(); !rep.OK() {
				t.Fatalf("point %d keep %d: inconsistent after recovery: %v", point, keep, rep)
			}
		}
	}
}

func TestRecoverIdempotent(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	_, _ = p.Alloc(4)
	p.SetCrashFunc(crashOnEvent(DurMeta, 0, 2))
	_ = p.Free(a)
	rec := crashThenRecover(t, p)
	if rec.Clean() {
		t.Fatal("first recovery had nothing to do")
	}
	second := p.RecoverMeta()
	if !second.Clean() {
		t.Fatalf("second recovery not clean: %v", second)
	}
}

func TestRecoverCleanPoolUntouched(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	p.Store(a, 42)
	p.Persist(a, 1)
	before := p.durImage()
	rec := p.RecoverMeta()
	if !rec.Clean() {
		t.Fatalf("clean pool 'recovered': %v", rec)
	}
	after := p.durImage()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("recovery modified clean pool at word %d", i)
		}
	}
}

func TestRecoverFatalOnBadMagic(t *testing.T) {
	p := New(256)
	p.WriteDurable(Base+hdrMagic, 0)
	p.Crash()
	rec := p.RecoverMeta()
	if rec.OK() {
		t.Fatal("bad magic not fatal")
	}
}

func TestRecoverFatalOnUnwalkableChain(t *testing.T) {
	p := New(256)
	a, _ := p.Alloc(4)
	p.WriteDurable(a-1, blockAllocated) // size 0: chain cannot advance
	p.Crash()
	rec := p.RecoverMeta()
	if rec.OK() {
		t.Fatal("unwalkable block chain not fatal")
	}
}
