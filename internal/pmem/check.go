package pmem

import "fmt"

// Integrity checking: the pmempool-check analogue used by the consistency
// evaluation (paper §6.2, Table 4 step (1): "run sanity checks on the
// persistent memory file ... which catch bad PM blocks").

// CheckReport describes problems found by CheckIntegrity.
type CheckReport struct {
	Problems []string
}

// OK reports whether the check found no problems.
func (r *CheckReport) OK() bool { return len(r.Problems) == 0 }

func (r *CheckReport) addf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

func (r *CheckReport) String() string {
	if r.OK() {
		return "pool check: ok"
	}
	s := fmt.Sprintf("pool check: %d problem(s)", len(r.Problems))
	for _, p := range r.Problems {
		s += "\n  - " + p
	}
	return s
}

// CheckIntegrity validates the durable pool image: header sanity, block chain
// well-formedness, free list consistency, and the live-words accounting.
func (p *Pool) CheckIntegrity() *CheckReport {
	r := &CheckReport{}
	durable := p.durImage()
	if durable[hdrMagic] != magicValue {
		r.addf("bad magic %#x", durable[hdrMagic])
		return r
	}
	if int(durable[hdrSize]) != p.words {
		r.addf("header size %d != pool size %d", durable[hdrSize], p.words)
	}
	heapNext := int(durable[hdrHeapNext])
	if heapNext < heapStart || heapNext > p.words {
		r.addf("heap bump pointer %d out of range", heapNext)
		return r
	}

	// Walk the block chain.
	live := 0
	freeBlocks := map[int]bool{}
	i := heapStart
	for i < heapNext {
		hdr := durable[i]
		size := int(hdr & blockSizeMask)
		if size <= 0 || i+1+size > heapNext {
			r.addf("corrupt block header at word %d: size=%d", i, size)
			return r
		}
		if hdr&blockAllocated != 0 {
			live += size
		} else {
			freeBlocks[i+1] = true
		}
		i += 1 + size
	}
	if live != int(durable[hdrLiveWords]) {
		r.addf("live-words accounting: header says %d, walk found %d", durable[hdrLiveWords], live)
	}

	// Walk the free list; every entry must be a free block from the walk,
	// and the list must not cycle.
	seen := map[int]bool{}
	cur := int(durable[hdrFreeHead])
	for cur != 0 {
		if seen[cur] {
			r.addf("free list cycle at payload %d", cur)
			break
		}
		seen[cur] = true
		if !freeBlocks[cur] {
			r.addf("free list entry %d is not a free block", cur)
			break
		}
		cur = int(durable[cur])
	}
	for fb := range freeBlocks {
		if !seen[fb] {
			r.addf("free block at payload %d not on free list", fb)
		}
	}
	return r
}
