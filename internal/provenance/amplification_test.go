package provenance

import (
	"math"
	"sort"
	"testing"

	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
)

// Persist-amplification edge cases around the optimizer: programs whose
// persists the pass removed entirely, and zero-allocated payloads whose
// durable baseline makes a follow-up persist redundant.

// TestStatsZeroPersistedWords: an index that saw writes but zero persists
// (the optimizer can delete every persist a site had) must report clean
// zeros — never NaN or Inf from a 0/0 ratio.
func TestStatsZeroPersistedWords(t *testing.T) {
	x := New()
	st := x.Stats()
	if st.RedundantRatio != 0 || st.MeanPersistsPerWord != 0 {
		t.Fatalf("empty index ratios: redundant=%v mean=%v, want 0", st.RedundantRatio, st.MeanPersistsPerWord)
	}

	// Writes recorded, nothing persisted.
	x.NoteWrite(11, 0x100)
	x.NoteWrite(11, 0x101)
	x.NoteWrite(12, 0x200)
	st = x.Stats()
	if st.PersistedWords != 0 {
		t.Fatalf("persisted words = %d, want 0", st.PersistedWords)
	}
	for _, v := range []float64{st.RedundantRatio, st.MeanPersistsPerWord} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v != 0 {
			t.Fatalf("zero-persist ratio = %v, want exactly 0", v)
		}
	}
	// Write-only sites must still surface in the hot-write table.
	if len(st.Sites) != 2 {
		t.Fatalf("sites = %+v, want the 2 write-only sites", st.Sites)
	}
	for _, s := range st.Sites {
		if s.PersistedWords != 0 || s.Writes == 0 {
			t.Fatalf("write-only site misreported: %+v", s)
		}
	}
}

// TestSitesStableWhenPersistSitesVanish: when the optimizer removes a
// site's persists mid-run, the table must stay a total order — persist-free
// sites rank by GUID after persisting ones, with no dependence on map
// iteration order.
func TestSitesStableWhenPersistSitesVanish(t *testing.T) {
	build := func() Stats {
		p, log, x, buf := newPersisted(t, 0)
		// Site 5 writes and persists; sites 9, 3, 7 only write (their
		// persist instructions were eliminated).
		x.NoteWrite(5, buf)
		if err := p.Store(buf, 1); err != nil {
			t.Fatal(err)
		}
		if err := p.Persist(buf, 1); err != nil {
			t.Fatal(err)
		}
		_ = log
		for _, g := range []int{9, 3, 7} {
			x.NoteWrite(g, buf+uint64(g))
		}
		return x.Stats()
	}
	st := build()
	wantGUIDs := []int{5, 3, 7, 9} // persister first, then write-only by GUID
	if len(st.Sites) != len(wantGUIDs) {
		t.Fatalf("sites: %+v", st.Sites)
	}
	for i, s := range st.Sites {
		if s.GUID != wantGUIDs[i] {
			t.Fatalf("site order %+v, want GUIDs %v", st.Sites, wantGUIDs)
		}
	}
	if !sort.SliceIsSorted(st.Sites, func(i, j int) bool {
		a, b := st.Sites[i], st.Sites[j]
		if a.PersistedWords != b.PersistedWords {
			return a.PersistedWords > b.PersistedWords
		}
		return a.GUID < b.GUID
	}) {
		t.Fatalf("sites not totally ordered: %+v", st.Sites)
	}
	// Determinism across rebuilds (map iteration must not show through).
	for trial := 0; trial < 8; trial++ {
		again := build()
		for i, s := range again.Sites {
			if s != st.Sites[i] {
				t.Fatalf("trial %d: site table changed: %+v vs %+v", trial, again.Sites, st.Sites)
			}
		}
	}
}

// TestZeroedAllocPersistRedundant: Zalloc zeroes AND persists the payload
// behind the hooks, so a program persist of the untouched words is
// redundant from the very first one — exactly the slop the optimizer's
// fresh-alloc rule removes, and what makes -opt lower the dynamic ratio.
func TestZeroedAllocPersistRedundant(t *testing.T) {
	p := pmem.New(1 << 12)
	log := checkpoint.NewLog(3)
	x := New()
	p.SetHooks(x.WrapHooks(log.Hooks(), log))

	buf, err := p.Zalloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Persist(buf, 8); err != nil {
		t.Fatal(err)
	}
	st := x.Stats()
	if st.RedundantPersists != 8 {
		t.Fatalf("persist of zeroed alloc: %d redundant word-persists, want 8", st.RedundantPersists)
	}
	if st.RedundantRatio != 1 {
		t.Fatalf("redundant ratio = %v, want 1", st.RedundantRatio)
	}

	// A store dirties exactly one word; persisting the whole object again
	// is redundant for the other 7.
	x.NoteWrite(4, buf+2)
	if err := p.Store(buf+2, 9); err != nil {
		t.Fatal(err)
	}
	if err := p.Persist(buf, 8); err != nil {
		t.Fatal(err)
	}
	st = x.Stats()
	if st.RedundantPersists != 15 {
		t.Fatalf("redundant word-persists = %d, want 15", st.RedundantPersists)
	}

	// Raw Alloc payloads stay dirty (residue) — first persist is NOT
	// redundant.
	raw, err := p.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	before := x.Stats().RedundantPersists
	if err := p.Persist(raw, 4); err != nil {
		t.Fatal(err)
	}
	if got := x.Stats().RedundantPersists; got != before {
		t.Fatalf("raw-alloc persist counted redundant (%d -> %d)", before, got)
	}
}
