// Incident reports: the end-to-end causal story of one mitigated fault,
// serialized as `arthas-incident/v1` JSON. One report joins every stage the
// pipeline already runs — detector signature, lineage of the faulting words,
// the reactor's candidate plan with per-candidate evidence, the reversion
// and scrub decisions, and the outcome — so a post-mortem no longer has to
// reconstruct the story from four different tools.
//
// Determinism contract (mirrors internal/scrub's report): two runs of the
// same case produce byte-identical JSON at any worker count. No wall-clock
// times, no Go-map iteration feeds the encoder; every slice is emitted in a
// deterministic order.
package provenance

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"arthas/internal/analysis"
	"arthas/internal/checkpoint"
	"arthas/internal/detector"
	"arthas/internal/reactor"
	"arthas/internal/scrub"
	"arthas/internal/vm"
)

// IncidentSchema identifies the incident report JSON schema.
const IncidentSchema = "arthas-incident/v1"

// Site is one instrumented source location (from the analyzer's GUID table).
type Site struct {
	GUID  int    `json:"guid"`
	Fn    string `json:"fn,omitempty"`
	Pos   string `json:"pos,omitempty"`
	Instr string `json:"instr,omitempty"`
}

// String renders "fn @ pos (instr)".
func (s *Site) String() string {
	if s == nil {
		return "?"
	}
	out := fmt.Sprintf("%s @ %s", s.Fn, s.Pos)
	if s.Instr != "" {
		out += " (" + s.Instr + ")"
	}
	return out
}

// WordLineage is the provenance of one durable word at incident time.
type WordLineage struct {
	Addr        uint64 `json:"addr"`
	Seq         uint64 `json:"seq,omitempty"`
	Tx          uint64 `json:"tx,omitempty"`
	WriteStep   int64  `json:"write_step,omitempty"`
	PersistStep int64  `json:"persist_step,omitempty"`
	Persists    uint64 `json:"persists,omitempty"`
	Site        *Site  `json:"site,omitempty"`
	// Known is false when the lineage ring no longer holds the word (never
	// persisted, or its record aged out).
	Known bool `json:"known"`
}

// IncidentSignature flattens the detector signature.
type IncidentSignature struct {
	Kind      string `json:"kind"`
	Fn        string `json:"fn,omitempty"`
	Loc       string `json:"loc,omitempty"`
	GUID      int    `json:"guid,omitempty"`
	Code      int64  `json:"code,omitempty"`
	Stack     string `json:"stack,omitempty"`
	HardFault bool   `json:"hard_fault"`
}

// CandidateEvidence is one reversion-plan candidate with its evidence: why
// the reactor considered it (slice distance, trace address) and what lineage
// the index holds for that address.
type CandidateEvidence struct {
	Seq      uint64       `json:"seq"`
	GUID     int          `json:"guid"`
	Dist     int          `json:"dist"`
	Addr     uint64       `json:"addr"`
	Tx       uint64       `json:"tx,omitempty"`
	Site     *Site        `json:"site,omitempty"`
	Reverted bool         `json:"reverted,omitempty"`
	Lineage  *WordLineage `json:"lineage,omitempty"`
}

// ModeAttempts is one strategy's attempt count (sorted slice, never a map).
type ModeAttempts struct {
	Mode     string `json:"mode"`
	Attempts int    `json:"attempts"`
}

// Mitigation summarizes the reactor's decisions and their cost.
type Mitigation struct {
	Recovered        bool           `json:"recovered"`
	RestartOnly      bool           `json:"restart_only,omitempty"`
	ModeUsed         string         `json:"mode_used"`
	FellBack         bool           `json:"fell_back,omitempty"`
	Replans          int            `json:"replans,omitempty"`
	ScrubRepairs     int            `json:"scrub_repairs,omitempty"`
	Attempts         int            `json:"attempts"`
	AttemptsByMode   []ModeAttempts `json:"attempts_by_mode,omitempty"`
	CandidateCount   int            `json:"candidate_count"`
	RevertedSeqs     []uint64       `json:"reverted_seqs,omitempty"`
	RevertedVersions int            `json:"reverted_versions"`
	TotalVersions    uint64         `json:"total_versions"`
}

// RootCause names the write the mitigation actually undid: the first
// reverted checkpoint version, resolved through the plan, the checkpoint
// log, and the analyzer's GUID table.
type RootCause struct {
	Seq uint64 `json:"seq"`
	Tx  uint64 `json:"tx,omitempty"`
	// EntryAddr/EntryWords/VersionIndex locate the reverted version inside
	// the checkpoint log (entry↔lineage linkage).
	EntryAddr    uint64 `json:"entry_addr"`
	EntryWords   int    `json:"entry_words"`
	VersionIndex int    `json:"version_index"`
	GUID         int    `json:"guid,omitempty"`
	Site         *Site  `json:"site,omitempty"`
}

// ScrubSummary condenses a media-scrub report into the incident.
type ScrubSummary struct {
	CorruptBlocks int  `json:"corrupt_blocks"`
	Healed        int  `json:"healed"`
	Quarantined   int  `json:"quarantined"`
	RepairedWords int  `json:"repaired_words"`
	Degraded      bool `json:"degraded,omitempty"`
	Healthy       bool `json:"healthy"`
}

// Incident is one end-to-end incident report (`arthas-incident/v1`).
type Incident struct {
	Schema      string `json:"schema"`
	Case        string `json:"case,omitempty"`
	System      string `json:"system,omitempty"`
	Fault       string `json:"fault,omitempty"`
	Consequence string `json:"consequence,omitempty"`

	Signature IncidentSignature `json:"signature"`
	// FaultAddr/FaultStep describe the trapping access (0 when the failure
	// had no faulting address — asserts, hangs, wrong results).
	FaultAddr uint64 `json:"fault_addr,omitempty"`
	FaultStep int64  `json:"fault_step,omitempty"`

	// Lineage holds the provenance of the faulting words: the trap address
	// plus every address the winning reversion touched, ascending.
	Lineage []WordLineage `json:"lineage,omitempty"`

	// Plan is the reactor's candidate list in plan (trial) order.
	Plan []CandidateEvidence `json:"plan,omitempty"`

	Mitigation Mitigation    `json:"mitigation"`
	RootCause  *RootCause    `json:"root_cause,omitempty"`
	Scrub      *ScrubSummary `json:"scrub,omitempty"`

	// Outcome is "recovered", "restart-only", or "not-recovered".
	Outcome string `json:"outcome"`
}

// IncidentInput bundles what BuildIncident joins. Index, Log, Analysis,
// Scrub, and Report.Plan may each be nil; the report degrades gracefully
// (lineage unknown, sites unresolved) rather than failing.
type IncidentInput struct {
	Case        string
	System      string
	Fault       string
	Consequence string

	Signature detector.Signature
	HardFault bool
	Trap      *vm.Trap

	Report   *reactor.Report
	Index    *Index
	Log      *checkpoint.Log
	Analysis *analysis.Result
	Scrub    *scrub.Report

	// VersionsAtFailure, when nonzero, overrides the report's TotalVersions
	// in the incident. The report counts the log's LIFETIME versions, which
	// sequential probe re-executions inflate on the primary log while
	// parallel ones inflate private fork logs — the count at failure time is
	// the one that is identical at every worker count.
	VersionsAtFailure uint64
}

// siteOf resolves a GUID to its source site (nil when unknown).
func siteOf(res *analysis.Result, guid int) *Site {
	if res == nil || guid == 0 {
		return nil
	}
	for i := range res.GUIDs {
		gi := &res.GUIDs[i]
		if gi.GUID == guid {
			return &Site{GUID: guid, Fn: gi.Fn, Pos: gi.Pos.String(), Instr: gi.Instr}
		}
	}
	return nil
}

// lineageOf assembles one word's lineage entry.
func lineageOf(idx *Index, res *analysis.Result, addr uint64) WordLineage {
	wl := WordLineage{Addr: addr}
	if idx == nil {
		return wl
	}
	rec, ok := idx.Lookup(addr)
	if !ok {
		wl.Persists = idx.Persists(addr)
		return wl
	}
	wl.Known = true
	wl.Seq = rec.Seq
	wl.Tx = rec.Tx
	wl.WriteStep = rec.WriteStep
	wl.PersistStep = rec.PersistStep
	wl.Persists = rec.Persists
	wl.Site = siteOf(res, rec.GUID)
	return wl
}

// BuildIncident joins one mitigated fault into an incident report.
func BuildIncident(in IncidentInput) *Incident {
	inc := &Incident{
		Schema:      IncidentSchema,
		Case:        in.Case,
		System:      in.System,
		Fault:       in.Fault,
		Consequence: in.Consequence,
		Signature: IncidentSignature{
			Kind:      in.Signature.Kind.String(),
			Fn:        in.Signature.Fn,
			Loc:       in.Signature.Loc,
			GUID:      in.Signature.GUID,
			Code:      in.Signature.Code,
			Stack:     in.Signature.Stack,
			HardFault: in.HardFault,
		},
		Outcome: "not-recovered",
	}
	if in.Trap != nil {
		inc.FaultAddr = in.Trap.Addr
		inc.FaultStep = in.Trap.Step
	}

	rep := in.Report
	reverted := map[uint64]bool{}
	if rep != nil {
		for _, s := range rep.RevertedSeqs {
			reverted[s] = true
		}
		inc.Mitigation = Mitigation{
			Recovered:        rep.Recovered,
			RestartOnly:      rep.RestartOnly,
			ModeUsed:         rep.ModeUsed.String(),
			FellBack:         rep.FellBack,
			Replans:          rep.Replans,
			ScrubRepairs:     rep.ScrubRepairs,
			Attempts:         rep.Attempts,
			CandidateCount:   rep.CandidateCount,
			RevertedSeqs:     append([]uint64(nil), rep.RevertedSeqs...),
			RevertedVersions: rep.RevertedVersions,
			TotalVersions:    rep.TotalVersions,
		}
		if in.VersionsAtFailure != 0 {
			inc.Mitigation.TotalVersions = in.VersionsAtFailure
		}
		for _, mode := range []string{"purge", "rollback", "restart"} {
			if n := rep.AttemptsByMode[mode]; n > 0 {
				inc.Mitigation.AttemptsByMode = append(inc.Mitigation.AttemptsByMode,
					ModeAttempts{Mode: mode, Attempts: n})
			}
		}
		switch {
		case rep.Recovered && rep.RestartOnly:
			inc.Outcome = "restart-only"
		case rep.Recovered:
			inc.Outcome = "recovered"
		}
	}

	// Plan with per-candidate evidence.
	if rep != nil && rep.Plan != nil {
		for _, c := range rep.Plan.Candidates {
			ev := CandidateEvidence{
				Seq: c.Seq, GUID: c.GUID, Dist: c.Dist, Addr: c.Addr,
				Site:     siteOf(in.Analysis, c.GUID),
				Reverted: reverted[c.Seq],
			}
			if in.Log != nil {
				ev.Tx = in.Log.TxOf(c.Seq)
			}
			if in.Index != nil {
				wl := lineageOf(in.Index, in.Analysis, c.Addr)
				ev.Lineage = &wl
			}
			inc.Plan = append(inc.Plan, ev)
		}
	}

	// Lineage of the faulting words: trap address + reverted candidates'
	// addresses, deduplicated, ascending.
	addrSet := map[uint64]bool{}
	if in.Trap != nil && in.Trap.Addr != 0 {
		addrSet[in.Trap.Addr] = true
	}
	for _, ev := range inc.Plan {
		if ev.Reverted {
			addrSet[ev.Addr] = true
		}
	}
	addrs := make([]uint64, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		inc.Lineage = append(inc.Lineage, lineageOf(in.Index, in.Analysis, a))
	}

	// Root cause: the first reverted sequence number, resolved to its
	// checkpoint entry/version and its write site.
	if rep != nil && len(rep.RevertedSeqs) > 0 {
		seq := rep.RevertedSeqs[0]
		rc := &RootCause{Seq: seq}
		if in.Log != nil {
			rc.Tx = in.Log.TxOf(seq)
			if e, vi, ok := in.Log.Locate(seq); ok {
				rc.EntryAddr = e.Addr
				rc.EntryWords = e.Words
				rc.VersionIndex = vi
			}
		}
		if rep.Plan != nil {
			for _, c := range rep.Plan.Candidates {
				if c.Seq == seq {
					rc.GUID = c.GUID
					rc.Site = siteOf(in.Analysis, c.GUID)
					break
				}
			}
		}
		inc.RootCause = rc
	}

	if in.Scrub != nil {
		inc.Scrub = &ScrubSummary{
			CorruptBlocks: in.Scrub.CorruptBlocks,
			Healed:        in.Scrub.Healed,
			Quarantined:   in.Scrub.Quarantined,
			RepairedWords: in.Scrub.RepairedWords,
			Degraded:      in.Scrub.Degraded,
			Healthy:       in.Scrub.Healthy(),
		}
	}
	return inc
}

// JSON renders the incident deterministically (trailing newline included).
func (inc *Incident) JSON() []byte {
	b, _ := json.MarshalIndent(inc, "", "  ")
	return append(b, '\n')
}

// DecodeIncident parses an incident report, checking the schema tag.
func DecodeIncident(data []byte) (*Incident, error) {
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		return nil, fmt.Errorf("incident: %w", err)
	}
	if inc.Schema != IncidentSchema {
		return nil, fmt.Errorf("incident: schema %q, want %q", inc.Schema, IncidentSchema)
	}
	return &inc, nil
}

// Text renders the incident as a human post-mortem timeline
// (arthas-inspect incident).
func (inc *Incident) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "incident (%s)", inc.Schema)
	if inc.Case != "" {
		fmt.Fprintf(&sb, " — case %s", inc.Case)
	}
	if inc.System != "" {
		fmt.Fprintf(&sb, " on %s", inc.System)
	}
	sb.WriteString("\n")
	if inc.Fault != "" {
		fmt.Fprintf(&sb, "  fault:       %s", inc.Fault)
		if inc.Consequence != "" {
			fmt.Fprintf(&sb, " → %s", inc.Consequence)
		}
		sb.WriteString("\n")
	}
	sig := inc.Signature
	fmt.Fprintf(&sb, "  signature:   %s", sig.Kind)
	if sig.Fn != "" {
		fmt.Fprintf(&sb, " at %s @ %s", sig.Fn, sig.Loc)
	}
	if sig.GUID != 0 {
		fmt.Fprintf(&sb, " guid=%d", sig.GUID)
	}
	if sig.Code != 0 {
		fmt.Fprintf(&sb, " code=%d", sig.Code)
	}
	fmt.Fprintf(&sb, " hard=%v\n", sig.HardFault)
	if inc.FaultAddr != 0 {
		fmt.Fprintf(&sb, "  fault addr:  %#x (step %d)\n", inc.FaultAddr, inc.FaultStep)
	}
	if len(inc.Lineage) > 0 {
		sb.WriteString("  lineage of faulting words:\n")
		for _, wl := range inc.Lineage {
			fmt.Fprintf(&sb, "    %#x: ", wl.Addr)
			if !wl.Known {
				if wl.Persists > 0 {
					fmt.Fprintf(&sb, "lineage aged out (%d persists recorded)\n", wl.Persists)
				} else {
					sb.WriteString("no recorded lineage\n")
				}
				continue
			}
			fmt.Fprintf(&sb, "last written by %s, write step %d, persisted step %d",
				wl.Site.String(), wl.WriteStep, wl.PersistStep)
			if wl.Seq != 0 {
				fmt.Fprintf(&sb, ", ckpt seq %d", wl.Seq)
				if wl.Tx != 0 {
					fmt.Fprintf(&sb, " (tx %d)", wl.Tx)
				}
			}
			fmt.Fprintf(&sb, ", %d lifetime persists\n", wl.Persists)
		}
	}
	if len(inc.Plan) > 0 {
		fmt.Fprintf(&sb, "  plan: %d candidates (trial order)\n", len(inc.Plan))
		for i, ev := range inc.Plan {
			fmt.Fprintf(&sb, "    [%d] seq=%d dist=%d addr=%#x %s", i, ev.Seq, ev.Dist, ev.Addr, ev.Site.String())
			if ev.Tx != 0 {
				fmt.Fprintf(&sb, " tx=%d", ev.Tx)
			}
			if ev.Reverted {
				sb.WriteString("  << REVERTED")
			}
			sb.WriteString("\n")
		}
	}
	m := inc.Mitigation
	fmt.Fprintf(&sb, "  mitigation:  mode=%s attempts=%d", m.ModeUsed, m.Attempts)
	if len(m.AttemptsByMode) > 0 {
		var parts []string
		for _, ma := range m.AttemptsByMode {
			parts = append(parts, fmt.Sprintf("%s:%d", ma.Mode, ma.Attempts))
		}
		fmt.Fprintf(&sb, " [%s]", strings.Join(parts, " "))
	}
	fmt.Fprintf(&sb, " reverted=%d/%d versions", m.RevertedVersions, m.TotalVersions)
	if m.FellBack {
		sb.WriteString(" (fell back to rollback)")
	}
	if m.Replans > 0 {
		fmt.Fprintf(&sb, " replans=%d", m.Replans)
	}
	if m.ScrubRepairs > 0 {
		fmt.Fprintf(&sb, " scrub_repairs=%d", m.ScrubRepairs)
	}
	sb.WriteString("\n")
	if inc.Scrub != nil {
		s := inc.Scrub
		fmt.Fprintf(&sb, "  scrub:       %d corrupt blocks, %d healed, %d quarantined, %d words repaired",
			s.CorruptBlocks, s.Healed, s.Quarantined, s.RepairedWords)
		if s.Degraded {
			sb.WriteString(", DEGRADED")
		}
		sb.WriteString("\n")
	}
	if rc := inc.RootCause; rc != nil {
		fmt.Fprintf(&sb, "  root cause:  seq=%d", rc.Seq)
		if rc.Tx != 0 {
			fmt.Fprintf(&sb, " tx=%d", rc.Tx)
		}
		fmt.Fprintf(&sb, " — %s — checkpoint entry %#x+%d version %d\n",
			rc.Site.String(), rc.EntryAddr, rc.EntryWords, rc.VersionIndex)
	}
	fmt.Fprintf(&sb, "  outcome:     %s\n", inc.Outcome)
	return sb.String()
}
