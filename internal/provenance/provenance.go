// Package provenance is the fault-provenance layer: a ring-buffered per-word
// write-lineage index maintained at the pool's persistence points, plus the
// persist-amplification accounting built on the same hooks.
//
// The Index answers "who wrote this durable word, when, and under which
// checkpoint version?" — the causal evidence the paper's whole pipeline is
// built to exploit but that the PR 1/PR 2 telemetry never captured. Two feeds
// keep it current:
//
//   - the VM's WriteSink reports <GUID, address> for every instrumented PM
//     store, stamping the volatile last-writer map with the machine's logical
//     clock;
//   - the pool's persistence hooks (wrapped around the checkpoint log's via
//     WrapHooks) snapshot that last-writer state into a lineage Record per
//     persisted word, correlated with the checkpoint sequence number and
//     transaction id the log just assigned.
//
// Records live in a bounded ring (MaxRecords), so memory stays fixed no
// matter how hot the persist path is; a per-word index resolves the newest
// resident record in O(1). Nothing here runs unless an Index is attached:
// the disabled path is the existing nil-check per event site the rest of the
// observability layer already pays (see obs_overhead_bench_test.go).
//
// On top of the same per-word stream the Index accounts persist
// amplification: persists per durable word, the redundant-persist ratio
// (words persisted with no recorded write since their previous persist —
// exactly the flushes a Bentō-style flush-elimination pass would drop), and
// per-site hot-write tallies. Export via Stats or Publish.
package provenance

import (
	"sort"

	"arthas/internal/checkpoint"
	"arthas/internal/obs"
	"arthas/internal/pmem"
)

// DefaultMaxRecords bounds the lineage ring (per-word records).
const DefaultMaxRecords = 1 << 16

// Record is one lineage fact: the most recent persistence of one durable
// word, annotated with the write that produced the value.
type Record struct {
	// Addr is the persisted word.
	Addr uint64
	// Seq is the checkpoint sequence number assigned to the persist that
	// produced this record (0 when no checkpoint log was attached).
	Seq uint64
	// Tx is the checkpoint transaction id (0 = not transactional).
	Tx uint64
	// GUID is the instrumented instruction that last stored to the word
	// before it persisted (0 = unattributed: allocator zeroing, header
	// maintenance, or an uninstrumented write).
	GUID int
	// WriteStep is the VM logical time of that last store (0 if unknown).
	WriteStep int64
	// PersistStep is the VM logical time when the word became durable.
	PersistStep int64
	// Persists is the word's lifetime persist count at record time.
	Persists uint64
}

// writer is the volatile last-writer state of one word.
type writer struct {
	guid int
	step int64
	// dirty marks a recorded write since the word's last persist; a persist
	// finding dirty=false is redundant (flush-elimination candidate).
	dirty bool
	// durable marks a word whose current value is already durable with no
	// program persist recorded yet: the allocator zeroes and persists fresh
	// payloads behind the hooks, so persisting an untouched fresh word is
	// redundant even on its first recorded persist.
	durable bool
}

// SiteStat is one write site's amplification tally.
type SiteStat struct {
	GUID           int
	Writes         uint64 // stores recorded via NoteWrite
	PersistedWords uint64 // word-persists attributed to this site as last writer
}

// Stats is a point-in-time amplification snapshot.
type Stats struct {
	// Records counts lineage records ever appended; Resident is how many the
	// ring currently holds.
	Records  uint64
	Resident int
	// PersistOps counts persistence-hook invocations (one per persisted
	// range — the program's persist/fence barriers as the pool sees them).
	PersistOps uint64
	// PersistedWords counts word-persists; DistinctWords is how many
	// distinct durable words ever persisted. Their ratio is the mean
	// persist amplification per word.
	PersistedWords      uint64
	DistinctWords       int
	MeanPersistsPerWord float64
	// RedundantPersists counts word-persists with no recorded write since
	// the word's previous persist; RedundantRatio = redundant/persisted.
	RedundantPersists uint64
	RedundantRatio    float64
	// Transactions counts persistence transactions observed.
	Transactions uint64
	// Sites is the per-site hot-write table, hottest (most persisted words)
	// first, GUID ascending on ties — deterministic.
	Sites []SiteStat
}

// Index is the write-lineage ring plus amplification accounting for one
// pool. It is not safe for concurrent use; like the trace, it records only
// from the (single-threaded) machine and is queried while the machine idles.
// Speculative mitigation forks install plain log hooks, so probe traffic
// never pollutes the index — lineage always describes the primary timeline.
type Index struct {
	// MaxRecords bounds the ring (default DefaultMaxRecords). Set before
	// the first persist.
	MaxRecords int

	ring []Record
	next uint64 // lifetime records appended; next-1 is the newest id

	byAddr    map[uint64]uint64 // word -> id of its newest record
	lastWrite map[uint64]writer
	persists  map[uint64]uint64 // word -> lifetime persist count

	siteWrites   map[int]uint64
	sitePersists map[int]uint64

	persistOps     uint64
	persistedWords uint64
	redundant      uint64
	txCount        uint64

	clock func() int64

	sink  obs.Sink
	obsOn bool
}

// New creates an empty lineage index.
func New() *Index {
	return &Index{
		MaxRecords:   DefaultMaxRecords,
		byAddr:       map[uint64]uint64{},
		lastWrite:    map[uint64]writer{},
		persists:     map[uint64]uint64{},
		siteWrites:   map[int]uint64{},
		sitePersists: map[int]uint64{},
		sink:         obs.Nop(),
	}
}

// SetClock installs the logical clock (normally the machine's step counter).
// Re-wire after every reboot: the machine is replaced on restart.
func (x *Index) SetClock(fn func() int64) { x.clock = fn }

// SetSink installs an observability sink (nil restores the no-op).
func (x *Index) SetSink(s obs.Sink) {
	x.sink = obs.OrNop(s)
	x.obsOn = x.sink.Enabled()
}

func (x *Index) now() int64 {
	if x.clock == nil {
		return 0
	}
	return x.clock()
}

// NoteWrite records an instrumented PM store: it is the VM's WriteSink. The
// hot path is two map writes behind the machine's nil-check.
func (x *Index) NoteWrite(guid int, addr uint64) {
	x.lastWrite[addr] = writer{guid: guid, step: x.now(), dirty: true}
	x.siteWrites[guid]++
}

// noteAlloc marks a raw allocation's words as written (the payload may hold
// residue the program must overwrite); attribution is GUID 0 until an
// instrumented store lands.
func (x *Index) noteAlloc(addr uint64, words int) {
	step := x.now()
	for w := 0; w < words; w++ {
		x.lastWrite[addr+uint64(w)] = writer{step: step, dirty: true}
	}
}

// noteZeroed marks a zero-allocated payload durably clean: Zalloc zeroed and
// persisted it behind the hooks, so until a store lands, persisting any of
// these words is redundant — the durable and current values already agree.
func (x *Index) noteZeroed(addr uint64, words int) {
	step := x.now()
	for w := 0; w < words; w++ {
		x.lastWrite[addr+uint64(w)] = writer{step: step, durable: true}
	}
}

// notePersist appends one lineage record per persisted word. log, when
// non-nil, has already processed this persist (WrapHooks delegates first),
// so log.Seq() is the sequence number of the version just recorded.
func (x *Index) notePersist(addr uint64, words int, log *checkpoint.Log) {
	var seq, tx uint64
	if log != nil {
		seq = log.Seq()
		tx = log.TxOf(seq)
	}
	step := x.now()
	if x.ring == nil {
		if x.MaxRecords <= 0 {
			x.MaxRecords = DefaultMaxRecords
		}
		x.ring = make([]Record, x.MaxRecords)
	}
	x.persistOps++
	for w := 0; w < words; w++ {
		a := addr + uint64(w)
		x.persistedWords++
		n := x.persists[a] + 1
		x.persists[a] = n
		lw := x.lastWrite[a]
		if !lw.dirty && (n > 1 || lw.durable) {
			x.redundant++
		}
		if lw.dirty || !lw.durable {
			lw.dirty = false
			lw.durable = true
			x.lastWrite[a] = lw
		}
		x.sitePersists[lw.guid]++
		id := x.next
		x.next++
		x.ring[id%uint64(len(x.ring))] = Record{
			Addr: a, Seq: seq, Tx: tx,
			GUID: lw.guid, WriteStep: lw.step, PersistStep: step,
			Persists: n,
		}
		x.byAddr[a] = id
	}
	if x.obsOn {
		x.sink.Count("prov.lineage_records", int64(words))
	}
}

// WrapHooks composes the index onto existing pool hooks (normally the
// checkpoint log's): every event reaches the inner hooks first, then the
// index stamps lineage using the state the log just committed. Install the
// result with pool.SetHooks. log may be nil (lineage then carries no
// checkpoint correlation).
func (x *Index) WrapHooks(h pmem.Hooks, log *checkpoint.Log) pmem.Hooks {
	return pmem.Hooks{
		OnPersist: func(addr uint64, data []uint64) {
			if h.OnPersist != nil {
				h.OnPersist(addr, data)
			}
			x.notePersist(addr, len(data), log)
		},
		OnTxBegin: func() {
			if h.OnTxBegin != nil {
				h.OnTxBegin()
			}
			x.txCount++
		},
		OnTxCommit: func() {
			if h.OnTxCommit != nil {
				h.OnTxCommit()
			}
		},
		OnAlloc: func(addr uint64, words int) {
			if h.OnAlloc != nil {
				h.OnAlloc(addr, words)
			}
			x.noteAlloc(addr, words)
		},
		OnFree: func(addr uint64, words int) {
			if h.OnFree != nil {
				h.OnFree(addr, words)
			}
		},
		OnZero: func(addr uint64, words int) {
			if h.OnZero != nil {
				h.OnZero(addr, words)
			}
			x.noteZeroed(addr, words)
		},
	}
}

// Snapshot deep-copies the index. Incident reports are built from a snapshot
// taken at failure time so that sequential mitigation — whose probe
// re-executions persist through the primary pool and keep feeding the live
// index — cannot make the report depend on the worker count (parallel forks
// install plain log hooks and leave the index frozen instead).
func (x *Index) Snapshot() *Index {
	c := New()
	c.MaxRecords = x.MaxRecords
	c.ring = append([]Record(nil), x.ring...)
	c.next = x.next
	for k, v := range x.byAddr {
		c.byAddr[k] = v
	}
	for k, v := range x.lastWrite {
		c.lastWrite[k] = v
	}
	for k, v := range x.persists {
		c.persists[k] = v
	}
	for k, v := range x.siteWrites {
		c.siteWrites[k] = v
	}
	for k, v := range x.sitePersists {
		c.sitePersists[k] = v
	}
	c.persistOps = x.persistOps
	c.persistedWords = x.persistedWords
	c.redundant = x.redundant
	c.txCount = x.txCount
	c.clock = x.clock
	return c
}

// Lookup returns the newest resident lineage record for a word. ok is false
// when the word never persisted or its record aged out of the ring.
func (x *Index) Lookup(addr uint64) (Record, bool) {
	id, present := x.byAddr[addr]
	if !present || len(x.ring) == 0 || x.next-id > uint64(len(x.ring)) {
		return Record{}, false
	}
	r := x.ring[id%uint64(len(x.ring))]
	if r.Addr != addr {
		return Record{}, false
	}
	return r, true
}

// Persists returns a word's lifetime persist count (0 = never persisted).
// Unlike Lookup it never ages out: the count survives ring eviction.
func (x *Index) Persists(addr uint64) uint64 { return x.persists[addr] }

// Stats snapshots the amplification accounting.
func (x *Index) Stats() Stats {
	st := Stats{
		Records:           x.next,
		PersistOps:        x.persistOps,
		PersistedWords:    x.persistedWords,
		DistinctWords:     len(x.persists),
		RedundantPersists: x.redundant,
		Transactions:      x.txCount,
	}
	if st.Records > uint64(len(x.ring)) {
		st.Resident = len(x.ring)
	} else {
		st.Resident = int(st.Records)
	}
	if st.DistinctWords > 0 {
		st.MeanPersistsPerWord = float64(st.PersistedWords) / float64(st.DistinctWords)
	}
	if st.PersistedWords > 0 {
		st.RedundantRatio = float64(st.RedundantPersists) / float64(st.PersistedWords)
	}
	for g, pw := range x.sitePersists {
		st.Sites = append(st.Sites, SiteStat{GUID: g, Writes: x.siteWrites[g], PersistedWords: pw})
	}
	for g, wr := range x.siteWrites {
		if _, seen := x.sitePersists[g]; !seen {
			st.Sites = append(st.Sites, SiteStat{GUID: g, Writes: wr})
		}
	}
	sort.Slice(st.Sites, func(i, j int) bool {
		if st.Sites[i].PersistedWords != st.Sites[j].PersistedWords {
			return st.Sites[i].PersistedWords > st.Sites[j].PersistedWords
		}
		return st.Sites[i].GUID < st.Sites[j].GUID
	})
	return st
}

// Publish exports the amplification snapshot through an observability sink:
// prov.* gauges for the scalar tallies plus one prov.site.persisted_words
// histogram sample per write site (the hot-write distribution).
func (x *Index) Publish(s obs.Sink) {
	if !obs.Enabled(s) {
		return
	}
	st := x.Stats()
	s.SetGauge("prov.records", int64(st.Records))
	s.SetGauge("prov.persist_ops", int64(st.PersistOps))
	s.SetGauge("prov.persisted_words", int64(st.PersistedWords))
	s.SetGauge("prov.distinct_words", int64(st.DistinctWords))
	s.SetGauge("prov.redundant_persists", int64(st.RedundantPersists))
	s.SetGauge("prov.transactions", int64(st.Transactions))
	for _, site := range st.Sites {
		s.Observe("prov.site.persisted_words", float64(site.PersistedWords))
	}
}
