package provenance

import (
	"testing"

	"arthas/internal/checkpoint"
	"arthas/internal/obs"
	"arthas/internal/pmem"
)

// newPersisted builds a pool+log+index with the index's hooks installed and
// one allocated buffer, returning all three plus the buffer address.
func newPersisted(t *testing.T, maxRecords int) (*pmem.Pool, *checkpoint.Log, *Index, uint64) {
	t.Helper()
	p := pmem.New(1 << 12)
	log := checkpoint.NewLog(3)
	x := New()
	if maxRecords > 0 {
		x.MaxRecords = maxRecords
	}
	p.SetHooks(x.WrapHooks(log.Hooks(), log))
	buf, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	return p, log, x, buf
}

func TestLineageStampsSeqAndTx(t *testing.T) {
	p, log, x, buf := newPersisted(t, 0)
	step := int64(0)
	x.SetClock(func() int64 { return step })

	step = 10
	x.NoteWrite(7, buf)
	p.Store(buf, 0xbeef)
	step = 20
	if err := p.Persist(buf, 1); err != nil {
		t.Fatal(err)
	}

	rec, ok := x.Lookup(buf)
	if !ok {
		t.Fatal("no lineage for persisted word")
	}
	if rec.GUID != 7 || rec.WriteStep != 10 || rec.PersistStep != 20 {
		t.Fatalf("record = %+v, want guid=7 write=10 persist=20", rec)
	}
	if rec.Seq != log.Seq() {
		t.Fatalf("record seq = %d, want log seq %d", rec.Seq, log.Seq())
	}
	if rec.Tx != 0 {
		t.Fatalf("non-tx persist carried tx %d", rec.Tx)
	}

	// Transactional persist carries the log's tx id.
	x.NoteWrite(9, buf+1)
	p.Store(buf+1, 0xcafe)
	if err := p.PersistTx([]pmem.Range{{Addr: buf + 1, Words: 1}}); err != nil {
		t.Fatal(err)
	}
	rec2, ok := x.Lookup(buf + 1)
	if !ok {
		t.Fatal("no lineage for tx-persisted word")
	}
	if rec2.GUID != 9 {
		t.Fatalf("tx record guid = %d, want 9", rec2.GUID)
	}
	if rec2.Tx == 0 || rec2.Tx != log.TxOf(rec2.Seq) {
		t.Fatalf("tx record tx = %d, want %d", rec2.Tx, log.TxOf(rec2.Seq))
	}
}

func TestRingEvictionAndStaleness(t *testing.T) {
	p, _, x, buf := newPersisted(t, 4)

	// Persist 8 distinct words through a 4-record ring: the first four
	// records age out.
	for w := 0; w < 8; w++ {
		p.Store(buf+uint64(w), uint64(w))
		if err := p.Persist(buf+uint64(w), 1); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 4; w++ {
		if _, ok := x.Lookup(buf + uint64(w)); ok {
			t.Fatalf("word %d should have aged out of the 4-record ring", w)
		}
	}
	for w := 4; w < 8; w++ {
		if _, ok := x.Lookup(buf + uint64(w)); !ok {
			t.Fatalf("word %d should be resident", w)
		}
	}
	// Persist counts survive eviction.
	if n := x.Persists(buf); n != 1 {
		t.Fatalf("evicted word persist count = %d, want 1", n)
	}
	if _, ok := x.Lookup(buf + 100); ok {
		t.Fatal("never-persisted word resolved a record")
	}
}

func TestRedundantPersistAccounting(t *testing.T) {
	p, _, x, buf := newPersisted(t, 0)

	// Write+persist, then persist again with no intervening write: the
	// second word-persist is redundant.
	x.NoteWrite(3, buf)
	p.Store(buf, 1)
	if err := p.Persist(buf, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Persist(buf, 1); err != nil {
		t.Fatal(err)
	}
	// A fresh write clears the redundancy.
	x.NoteWrite(3, buf)
	p.Store(buf, 2)
	if err := p.Persist(buf, 1); err != nil {
		t.Fatal(err)
	}

	st := x.Stats()
	if st.RedundantPersists != 1 {
		t.Fatalf("redundant persists = %d, want 1", st.RedundantPersists)
	}
	if got := x.Persists(buf); got != 3 {
		t.Fatalf("lifetime persists = %d, want 3", got)
	}
	if st.PersistedWords != 3 || st.DistinctWords != 1 {
		t.Fatalf("persisted=%d distinct=%d, want 3/1", st.PersistedWords, st.DistinctWords)
	}
}

func TestStatsSitesDeterministicOrder(t *testing.T) {
	p, _, x, buf := newPersisted(t, 0)
	// Site 5 persists two words, sites 2 and 8 one each (tie broken by GUID).
	for i, guid := range []int{5, 5, 8, 2} {
		a := buf + uint64(i)
		x.NoteWrite(guid, a)
		p.Store(a, uint64(i))
		if err := p.Persist(a, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := x.Stats()
	if len(st.Sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(st.Sites))
	}
	if st.Sites[0].GUID != 5 || st.Sites[1].GUID != 2 || st.Sites[2].GUID != 8 {
		t.Fatalf("site order = %d,%d,%d, want 5,2,8",
			st.Sites[0].GUID, st.Sites[1].GUID, st.Sites[2].GUID)
	}
}

func TestAllocAttributionAndPublish(t *testing.T) {
	p, _, x, _ := newPersisted(t, 0)
	// A fresh alloc marks words dirty under GUID 0; persisting them is not
	// redundant even though no NoteWrite landed.
	b2, err := p.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	p.Store(b2, 9)
	if err := p.Persist(b2, 2); err != nil {
		t.Fatal(err)
	}
	if st := x.Stats(); st.RedundantPersists != 0 {
		t.Fatalf("fresh-alloc persist counted redundant: %+v", st)
	}
	rec, ok := x.Lookup(b2)
	if !ok || rec.GUID != 0 {
		t.Fatalf("alloc-attributed record = %+v ok=%v, want guid 0", rec, ok)
	}

	rec2 := obs.NewRecorder()
	x.Publish(rec2)
	if rec2.GaugeValue("prov.persisted_words") == 0 {
		t.Fatal("Publish exported no persisted-word gauge")
	}
}
