package obs

import (
	"strings"
	"testing"
)

func TestQuantileUniform(t *testing.T) {
	r := NewRecorder()
	for v := 1; v <= 1024; v++ {
		r.Observe("lat", float64(v))
	}
	p50 := r.Quantile("lat", 0.5)
	p99 := r.Quantile("lat", 0.99)
	// Power-of-two buckets bound the error by one bucket width: the true
	// p50 (≈512) lies in [256, 1024), the true p99 (≈1014) in [512, 1024].
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 = %v, want within [256, 1024]", p50)
	}
	if p99 < 512 || p99 > 1024 {
		t.Fatalf("p99 = %v, want within [512, 1024]", p99)
	}
	if !(p50 < p99) {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	if min, max := r.Quantile("lat", 0), r.Quantile("lat", 1); min != 1 || max != 1024 {
		t.Fatalf("q0=%v q1=%v, want 1 and 1024", min, max)
	}
}

func TestQuantileDegenerate(t *testing.T) {
	h := &Hist{}
	for i := 0; i < 100; i++ {
		h.observe(5)
	}
	// All samples equal: the clamp to [Min, Max] makes every quantile exact.
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 5 {
			t.Fatalf("Quantile(%v) = %v, want 5", q, got)
		}
	}
}

func TestQuantileBimodal(t *testing.T) {
	// 90 fast samples at ~4, 10 slow at ~4096: p50 sits in the fast mode,
	// p99 in the slow mode — the shape tail-latency hunting needs.
	h := &Hist{}
	for i := 0; i < 90; i++ {
		h.observe(4)
	}
	for i := 0; i < 10; i++ {
		h.observe(4096)
	}
	if p50 := h.Quantile(0.5); p50 < 4 || p50 >= 8 {
		t.Fatalf("p50 = %v, want in the fast mode [4, 8)", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 2048 || p99 > 4096 {
		t.Fatalf("p99 = %v, want in the slow mode [2048, 4096]", p99)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Hist
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	if got := NewRecorder().Quantile("absent", 0.5); got != 0 {
		t.Fatalf("absent quantile = %v", got)
	}
	// Out-of-range q clamps rather than panics.
	h := &Hist{}
	h.observe(10)
	if h.Quantile(-1) != 10 || h.Quantile(2) != 10 {
		t.Fatalf("clamped q = %v / %v", h.Quantile(-1), h.Quantile(2))
	}
	// Sub-1 samples land in bucket 0.
	var sub Hist
	sub.observe(0.25)
	sub.observe(0.75)
	if got := sub.Quantile(0.5); got < 0.25 || got > 0.75 {
		t.Fatalf("sub-1 p50 = %v", got)
	}
}

func TestSummaryShowsQuantiles(t *testing.T) {
	r := NewRecorder()
	for v := 1; v <= 100; v++ {
		r.Observe("ckpt.hook.ns", float64(v))
	}
	s := r.Summary()
	if !strings.Contains(s, "p50=") || !strings.Contains(s, "p99=") {
		t.Fatalf("summary missing quantiles:\n%s", s)
	}
}
