package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWorstOf(t *testing.T) {
	ok := ShardHealth{Shard: 0}
	deg := ShardHealth{Shard: 1, HealthState: HealthState{Degraded: true}}
	quar := ShardHealth{Shard: 2, HealthState: HealthState{QuarantinedBlocks: 3}}
	mit := ShardHealth{Shard: 3, HealthState: HealthState{Mitigating: true}}

	if got := WorstOf([]ShardHealth{ok, ok}).Status(); got != "ok" {
		t.Fatalf("all-ok worst = %q", got)
	}
	if got := WorstOf([]ShardHealth{ok, deg}).Status(); got != "degraded" {
		t.Fatalf("degraded worst = %q", got)
	}
	if got := WorstOf([]ShardHealth{ok, quar}).Status(); got != "degraded" {
		t.Fatalf("quarantined worst = %q", got)
	}
	if got := WorstOf([]ShardHealth{deg, mit}).Status(); got != "mitigating" {
		t.Fatalf("mitigating worst = %q", got)
	}
	if got := WorstOf([]ShardHealth{quar, quar}).QuarantinedBlocks; got != 6 {
		t.Fatalf("quarantined blocks sum = %d, want 6", got)
	}
	if got := WorstOf(nil).Status(); got != "ok" {
		t.Fatalf("empty fleet worst = %q", got)
	}
}

func TestFleetHealthHandlerJSON(t *testing.T) {
	shards := []ShardHealth{
		{Shard: 0},
		{Shard: 1, HealthState: HealthState{Mitigating: true}},
		{Shard: 2, HealthState: HealthState{QuarantinedBlocks: 2}},
	}
	mux := NewFleetMux(nil, func() []ShardHealth { return shards })

	code, body := get(t, mux, "/healthz")
	if code != 503 {
		t.Fatalf("/healthz with a mitigating shard = %d, want 503", code)
	}
	var resp struct {
		Status string `json:"status"`
		Shards []struct {
			Shard             int    `json:"shard"`
			Status            string `json:"status"`
			QuarantinedBlocks int    `json:"quarantined_blocks"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/healthz body not JSON: %v\n%s", err, body)
	}
	if resp.Status != "mitigating" || len(resp.Shards) != 3 {
		t.Fatalf("aggregated health = %+v", resp)
	}
	if resp.Shards[1].Status != "mitigating" || resp.Shards[2].Status != "degraded" ||
		resp.Shards[2].QuarantinedBlocks != 2 {
		t.Fatalf("per-shard health = %+v", resp.Shards)
	}

	// All healthy → 200, status ok.
	shards = []ShardHealth{{Shard: 0}, {Shard: 1}}
	code, body = get(t, mux, "/healthz")
	if code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy fleet /healthz = %d %q", code, body)
	}
}

func TestFleetMuxPrometheusHealth(t *testing.T) {
	rec := NewRecorder()
	rec.Count("fleet.req", 9)
	rec.Observe("fleet.req.us", 120)
	shards := []ShardHealth{
		{Shard: 0},
		{Shard: 1, HealthState: HealthState{Mitigating: true}},
	}
	mux := NewFleetMux(func() *Recorder { return rec }, func() []ShardHealth { return shards })

	code, body := get(t, mux, "/metrics?format=prom")
	if code != 200 {
		t.Fatalf("/metrics?format=prom = %d", code)
	}
	for _, want := range []string{
		"arthas_fleet_req 9",
		`arthas_fleet_shard_health{shard="0",state="ok"} 0`,
		`arthas_fleet_shard_health{shard="1",state="mitigating"} 2`,
		"arthas_fleet_health_worst 2",
		`arthas_fleet_shard_quarantined_blocks{shard="0"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, body)
		}
	}

	// Text summary path still works and the nil-metrics mux 404s.
	if code, body := get(t, mux, "/metrics"); code != 200 || !strings.Contains(body, "fleet.req") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	nilMux := NewFleetMux(nil, func() []ShardHealth { return nil })
	if code, _ := get(t, nilMux, "/metrics"); code != 404 {
		t.Fatalf("/metrics with nil metrics func = %d, want 404", code)
	}
}

func TestFleetHealthHandlerDirect(t *testing.T) {
	h := FleetHealthHandler(func() []ShardHealth {
		return []ShardHealth{{Shard: 0, HealthState: HealthState{Degraded: true}}}
	})
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 503 || !strings.Contains(rr.Body.String(), `"status":"degraded"`) {
		t.Fatalf("degraded fleet = %d %q", rr.Code, rr.Body.String())
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for _, v := range []float64{1, 2, 4} {
		a.observe(v)
	}
	for _, v := range []float64{8, 16} {
		b.observe(v)
	}
	a.Merge(&b)
	if a.Count != 5 || a.Sum != 31 || a.Min != 1 || a.Max != 16 {
		t.Fatalf("merged digest = %+v", a)
	}
	// Merging into an empty hist copies the source digest.
	var c Hist
	c.Merge(&b)
	if c.Count != 2 || c.Min != 8 || c.Max != 16 {
		t.Fatalf("merge into empty = %+v", c)
	}
	// Nil and empty merges are no-ops.
	c.Merge(nil)
	c.Merge(&Hist{})
	if c.Count != 2 {
		t.Fatalf("no-op merges changed count: %+v", c)
	}
}

func TestRecorderAbsorb(t *testing.T) {
	shard0, shard1 := NewRecorder(), NewRecorder()
	shard0.Count("vm.steps", 10)
	shard0.SetGauge("pmem.live_words", 4)
	shard0.Observe("req.us", 100)
	shard0.Observe("req.us", 200)
	shard1.Count("vm.steps", 5)
	shard1.Observe("req.us", 400)

	merged := NewRecorder()
	merged.Absorb(shard0, "")
	merged.Absorb(shard1, "")
	merged.Absorb(shard0, "shard0.")
	merged.Absorb(shard1, "shard1.")

	if got := merged.CounterValue("vm.steps"); got != 15 {
		t.Fatalf("aggregate counter = %d, want 15", got)
	}
	if got := merged.CounterValue("shard1.vm.steps"); got != 5 {
		t.Fatalf("prefixed counter = %d, want 5", got)
	}
	if got := merged.GaugeValue("shard0.pmem.live_words"); got != 4 {
		t.Fatalf("prefixed gauge = %d, want 4", got)
	}
	h := merged.Histogram("req.us")
	if h == nil || h.Count != 3 || h.Min != 100 || h.Max != 400 {
		t.Fatalf("merged hist = %+v", h)
	}
	if q := merged.Quantile("req.us", 0.99); q < 200 || q > 400 {
		t.Fatalf("merged p99 = %g, want within (200, 400]", q)
	}

	// Absorbing into itself or from nil is a no-op.
	before := merged.CounterValue("vm.steps")
	merged.Absorb(merged, "")
	merged.Absorb(nil, "")
	if merged.CounterValue("vm.steps") != before {
		t.Fatalf("self/nil absorb changed state")
	}
}
