package obs

import "sort"

// Merging per-worker telemetry.
//
// A Recorder's span stack assumes single-goroutine nesting, so concurrent
// speculative-mitigation workers each record into a private Recorder and the
// reactor replays them into the session's main sink afterwards, in
// deterministic trial order (see docs/PARALLEL_MITIGATION.md). Replay
// reconstructs the span tree (spans re-nest under their recorded parents)
// and re-emits counters; wall-clock timing cannot be transplanted onto the
// destination's clock, so each replayed span carries its recorded duration
// as a "replayed_dur_ns" attribute instead. Gauges and histograms are NOT
// replayed: a speculative worker's point-in-time values and latency samples
// describe its private fork, not the main session.

// ReplayInto re-emits src's spans (with their recorded attributes plus
// extra, preserving parent/child structure) and counters into dst. A nil
// src or disabled dst is a no-op.
func ReplayInto(dst Sink, src *Recorder, extra ...Attr) {
	if src == nil || !Enabled(dst) {
		return
	}
	spans := src.Spans()
	children := make(map[uint64][]*SpanRecord, len(spans))
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	var replay func(rec *SpanRecord)
	replay = func(rec *SpanRecord) {
		attrs := make([]Attr, 0, len(rec.Attrs)+len(extra)+1)
		attrs = append(attrs, rec.Attrs...)
		attrs = append(attrs, extra...)
		attrs = append(attrs, A("replayed_dur_ns", rec.Dur.Nanoseconds()))
		sp := dst.Start(rec.Name, attrs...)
		for _, c := range children[rec.ID] {
			replay(c)
		}
		sp.End()
	}
	// Spans() returns start order, so roots (Parent 0) replay in the order
	// the worker opened them.
	for _, s := range children[0] {
		replay(s)
	}
	for _, c := range src.CountersInOrder() {
		dst.Count(c.Name, c.Value)
	}
}

// CounterSample is one named counter value (see CountersInOrder).
type CounterSample struct {
	Name  string
	Value int64
}

// CountersInOrder returns the recorder's counters in first-seen order.
func (r *Recorder) CountersInOrder() []CounterSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterSample, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, CounterSample{Name: name, Value: r.counters[name]})
	}
	// Sort by first-seen registration order so replay is deterministic.
	sort.Slice(out, func(i, j int) bool {
		return r.order[out[i].Name] < r.order[out[j].Name]
	})
	return out
}
