package obs

import "sort"

// Merging per-worker telemetry.
//
// A Recorder's span stack assumes single-goroutine nesting, so concurrent
// speculative-mitigation workers each record into a private Recorder and the
// reactor replays them into the session's main sink afterwards, in
// deterministic trial order (see docs/PARALLEL_MITIGATION.md). Replay
// reconstructs the span tree (spans re-nest under their recorded parents)
// and re-emits counters; wall-clock timing cannot be transplanted onto the
// destination's clock, so each replayed span carries its recorded duration
// as a "replayed_dur_ns" attribute instead. Gauges and histograms are NOT
// replayed: a speculative worker's point-in-time values and latency samples
// describe its private fork, not the main session.

// ReplayInto re-emits src's spans (with their recorded attributes plus
// extra, preserving parent/child structure) and counters into dst. A nil
// src or disabled dst is a no-op.
func ReplayInto(dst Sink, src *Recorder, extra ...Attr) {
	if src == nil || !Enabled(dst) {
		return
	}
	spans := src.Spans()
	children := make(map[uint64][]*SpanRecord, len(spans))
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	var replay func(rec *SpanRecord)
	replay = func(rec *SpanRecord) {
		attrs := make([]Attr, 0, len(rec.Attrs)+len(extra)+1)
		attrs = append(attrs, rec.Attrs...)
		attrs = append(attrs, extra...)
		attrs = append(attrs, A("replayed_dur_ns", rec.Dur.Nanoseconds()))
		sp := dst.Start(rec.Name, attrs...)
		for _, c := range children[rec.ID] {
			replay(c)
		}
		sp.End()
	}
	// Spans() returns start order, so roots (Parent 0) replay in the order
	// the worker opened them.
	for _, s := range children[0] {
		replay(s)
	}
	for _, c := range src.CountersInOrder() {
		dst.Count(c.Name, c.Value)
	}
}

// Merge folds o's samples into h bin-wise: counts and sums add, min/max
// widen, and power-of-two buckets combine exactly (both sides share the
// same fixed bucket bounds). A nil or empty o is a no-op.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if h.Count == 0 || o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Absorb folds src's counters, gauges, and histograms into r, with every
// metric name prefixed (e.g. "shard0."). Fleet-wide /metrics merges the
// per-shard Recorders this way: counters add, gauges overwrite (they are
// point-in-time values of distinct shards, hence the prefix), and
// histograms merge bin-wise. Metrics register in src's first-seen order so
// repeated merges of identical inputs render identically. Spans are not
// absorbed — use ReplayInto for those. A nil src (or r itself) is a no-op.
func (r *Recorder) Absorb(src *Recorder, prefix string) {
	if src == nil || src == r {
		return
	}
	type histSample struct {
		name string
		h    Hist
	}
	src.mu.Lock()
	names := make([]string, 0, len(src.order))
	for n := range src.order {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return src.order[names[i]] < src.order[names[j]] })
	var counters []CounterSample
	var gauges []CounterSample
	var hists []histSample
	for _, n := range names {
		if v, ok := src.counters[n]; ok {
			counters = append(counters, CounterSample{Name: n, Value: v})
		}
		if v, ok := src.gauges[n]; ok {
			gauges = append(gauges, CounterSample{Name: n, Value: v})
		}
		if h, ok := src.hists[n]; ok {
			hists = append(hists, histSample{name: n, h: *h})
		}
	}
	src.mu.Unlock()

	for _, c := range counters {
		r.Count(prefix+c.Name, c.Value)
	}
	for _, g := range gauges {
		r.SetGauge(prefix+g.Name, g.Value)
	}
	r.mu.Lock()
	for i := range hists {
		name := prefix + hists[i].name
		r.noteOrder(name)
		dst := r.hists[name]
		if dst == nil {
			dst = &Hist{}
			r.hists[name] = dst
		}
		dst.Merge(&hists[i].h)
	}
	r.mu.Unlock()
}

// CounterSample is one named counter value (see CountersInOrder).
type CounterSample struct {
	Name  string
	Value int64
}

// CountersInOrder returns the recorder's counters in first-seen order.
func (r *Recorder) CountersInOrder() []CounterSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterSample, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, CounterSample{Name: name, Value: r.counters[name]})
	}
	// Sort by first-seen registration order so replay is deterministic.
	sort.Slice(out, func(i, j int) bool {
		return r.order[out[i].Name] < r.order[out[j].Name]
	})
	return out
}
