package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecordsTail(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 40; i++ {
		f.Count("pmem.store", int64(i))
	}
	ev := f.Events()
	if len(ev) != 16 {
		t.Fatalf("held %d events, want 16", len(ev))
	}
	if f.TotalEvents() != 40 {
		t.Fatalf("total = %d", f.TotalEvents())
	}
	// The tail is the LAST 16 events, in order.
	for i, e := range ev {
		if e.Seq != uint64(25+i) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, 25+i)
		}
		if e.Value != float64(24+i) { // delta was the loop index (seq-1)
			t.Fatalf("event %d value = %v", i, e.Value)
		}
	}
}

func TestFlightSpansAndAttrs(t *testing.T) {
	f := NewFlight(32)
	root := f.Start("pipeline.run", A("fn", "put"))
	child := f.Start("vm.call")
	child.SetAttr("ops", 7)
	child.End()
	root.End()

	ev := f.Events()
	kinds := make([]FlightKind, len(ev))
	for i, e := range ev {
		kinds[i] = e.Kind
	}
	want := []FlightKind{FlightBegin, FlightAttr, FlightBegin, FlightAttr, FlightEnd, FlightEnd}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	// Child's begin is parented to the root span.
	if ev[2].Parent != ev[0].Span {
		t.Fatalf("child parent = %d, root span = %d", ev[2].Parent, ev[0].Span)
	}
	// Attr rendering matches live values.
	if RenderVal(ev[1].Val) != "put" || RenderVal(ev[3].Val) != "7" {
		t.Fatalf("attr vals = %v / %v", ev[1].Val, ev[3].Val)
	}
	// End event carries the span id and a duration.
	if ev[4].Span != ev[2].Span || ev[4].Name != "vm.call" {
		t.Fatalf("end event = %+v", ev[4])
	}
}

func TestFlightSpanHandleRecycling(t *testing.T) {
	f := NewFlight(64)
	// Warm up and reuse: repeated start/end cycles must not grow the free
	// list unboundedly or mis-nest parents.
	for i := 0; i < 10; i++ {
		sp := f.Start("a")
		sp.End()
	}
	if len(f.free) != 1 {
		t.Fatalf("free list len = %d, want 1", len(f.free))
	}
	// Double End is a no-op.
	sp := f.Start("b")
	sp.End()
	n := f.TotalEvents()
	sp.End()
	if f.TotalEvents() != n {
		t.Fatal("double End recorded an event")
	}
}

func TestFlightClock(t *testing.T) {
	f := NewFlight(16)
	step := int64(0)
	f.SetClock(func() int64 { return step })
	f.Count("a", 1)
	step = 42
	f.Count("b", 1)
	ev := f.Events()
	if ev[0].Step != 0 || ev[1].Step != 42 {
		t.Fatalf("steps = %d, %d", ev[0].Step, ev[1].Step)
	}
}

func TestFlightMarshalRoundTrip(t *testing.T) {
	f := NewFlight(16)
	f.SetClock(func() int64 { return 7 })
	sp := f.Start("vm.call", A("fn", "put"))
	f.Count("pmem.store", 3)
	f.Observe("ckpt.hook.ns", 123.5)
	f.SetGauge("pmem.dirty_words", 2)
	sp.End()
	// Rotate past capacity to exercise ring-cursor restoration.
	for i := 0; i < 20; i++ {
		f.Count("pmem.load", 1)
	}

	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFlight(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cap() != f.Cap() || g.TotalEvents() != f.TotalEvents() || g.Len() != f.Len() {
		t.Fatalf("cap/total/len = %d/%d/%d vs %d/%d/%d",
			g.Cap(), g.TotalEvents(), g.Len(), f.Cap(), f.TotalEvents(), f.Len())
	}
	a, b := f.Events(), g.Events()
	if len(a) != len(b) {
		t.Fatalf("events %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Kind != b[i].Kind || a[i].Name != b[i].Name ||
			a[i].Value != b[i].Value || a[i].Span != b[i].Span || a[i].Parent != b[i].Parent ||
			a[i].WallNS != b[i].WallNS || a[i].Step != b[i].Step ||
			RenderVal(a[i].Val) != RenderVal(b[i].Val) {
			t.Fatalf("event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The recovered recorder continues recording with increasing seqs.
	last := b[len(b)-1].Seq
	g.Count("x", 1)
	ev := g.Events()
	if got := ev[len(ev)-1].Seq; got != last+1 {
		t.Fatalf("continued seq = %d, want %d", got, last+1)
	}
}

func TestFlightUnmarshalErrors(t *testing.T) {
	f := NewFlight(16)
	f.Count("a", 1)
	data, _ := f.MarshalBinary()

	if _, err := UnmarshalFlight(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	if _, err := UnmarshalFlight([]byte("garbage garbage!")); err == nil {
		t.Fatal("garbage accepted")
	}
	for cut := 1; cut < len(data); cut += 7 {
		if _, err := UnmarshalFlight(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFlightJSONLAndTimeline(t *testing.T) {
	f := NewFlight(16)
	sp := f.Start("vm.call", A("fn", "put"))
	f.Count("pmem.store", 1)
	sp.End()

	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if m["kind"] == "" || m["seq"] == nil {
			t.Fatalf("line missing fields: %v", m)
		}
		n++
	}
	if n != 4 { // begin, attr, count, end
		t.Fatalf("%d JSONL lines, want 4", n)
	}

	var tl bytes.Buffer
	if err := f.WriteTimeline(&tl); err != nil {
		t.Fatal(err)
	}
	s := tl.String()
	for _, want := range []string{"begin", "vm.call", "pmem.store", "fn=put", "4 event(s)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("timeline missing %q:\n%s", want, s)
		}
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Count("c", 1)
				sp := f.Start("s")
				sp.SetAttr("k", i)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if f.TotalEvents() != 8*200*4 {
		t.Fatalf("total = %d", f.TotalEvents())
	}
	if _, err := f.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightZeroAllocHotPath(t *testing.T) {
	f := NewFlight(128)
	// Warm the span free list and the parent stack first: steady state is
	// what the guarantee covers.
	for i := 0; i < 8; i++ {
		sp := f.Start("warm")
		sp.End()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		f.Count("pmem.store", 1)
		f.SetGauge("pmem.dirty_words", 3)
		f.Observe("ckpt.hook.ns", 99)
		sp := f.Start("vm.call")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("flight hot path allocates: %v allocs/op", allocs)
	}
}

func BenchmarkObsFlightCount(b *testing.B) {
	f := NewFlight(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Count("pmem.store", 1)
	}
}

func BenchmarkObsFlightObserve(b *testing.B) {
	f := NewFlight(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Observe("ckpt.hook.ns", float64(i))
	}
}

func BenchmarkObsFlightSpan(b *testing.B) {
	f := NewFlight(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := f.Start("vm.call")
		sp.End()
	}
}
