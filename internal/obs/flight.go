package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Flight is a crash-surviving flight recorder: a fixed-capacity ring buffer
// of the last N telemetry events. It implements Sink, so it can fan in the
// same event stream a Recorder sees — but where the Recorder aggregates
// (counters sum, spans tree), the Flight keeps the raw event tail, which is
// what a post-mortem needs: "what happened right before the failure?".
//
// The hot path is allocation-free in steady state: events are written into
// preallocated ring slots (names are static string literals, so storing
// them copies a header, not bytes), and span handles are recycled through a
// free list. A span handle must not be used after End — the same contract
// the pmem simulator's callers already follow.
//
// A Flight attached to a pmem.Pool is serialized into the pool image by
// Pool.WriteTo and recovered by ReadPool, so a -poolfile saved after a
// crashed run carries the telemetry tail that led up to the failure (see
// docs/OBSERVABILITY.md, "Flight recorder").
type Flight struct {
	mu     sync.Mutex
	clock  func() int64
	ring   []FlightEvent
	total  uint64 // events ever recorded; ring index = (total-1) % cap
	nextID uint64 // next span id (1-based; 0 = no span / root parent)
	stack  []uint64
	free   []*flightSpan
}

// DefaultFlightEvents is the ring capacity used when none is configured.
const DefaultFlightEvents = 512

// FlightKind classifies one recorded event.
type FlightKind uint8

// Event kinds. Begin/End bracket spans; Attr annotates the span named by
// the event's Span field.
const (
	FlightCount FlightKind = iota + 1
	FlightGauge
	FlightHist
	FlightBegin
	FlightEnd
	FlightAttr
)

// String returns the JSONL kind tag.
func (k FlightKind) String() string {
	switch k {
	case FlightCount:
		return "count"
	case FlightGauge:
		return "gauge"
	case FlightHist:
		return "hist"
	case FlightBegin:
		return "begin"
	case FlightEnd:
		return "end"
	case FlightAttr:
		return "attr"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FlightEvent is one ring slot. Value carries the counter delta, gauge
// value, histogram observation, or (for FlightEnd) the span duration in
// nanoseconds. Span/Parent are span ids for Begin/End/Attr events. Val is
// the attribute value for FlightAttr events; after deserialization it is
// always a string (rendered with RenderVal at save time).
type FlightEvent struct {
	Seq    uint64
	Kind   FlightKind
	Name   string
	Value  float64
	Span   uint64
	Parent uint64
	Val    any
	WallNS int64
	Step   int64
}

// RenderVal renders an attr value the way flight serialization does, so
// live and recovered events compare equal.
func RenderVal(v any) string {
	if v == nil {
		return ""
	}
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprint(v)
}

// NewFlight returns a flight recorder holding the last n events (n <= 0
// selects DefaultFlightEvents; the minimum capacity is 16).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	if n < 16 {
		n = 16
	}
	return &Flight{
		ring:   make([]FlightEvent, n),
		nextID: 1,
		stack:  make([]uint64, 0, 64),
	}
}

// SetClock installs the logical clock stamped into events (Clockable).
func (f *Flight) SetClock(clock func() int64) {
	f.mu.Lock()
	f.clock = clock
	f.mu.Unlock()
}

func (f *Flight) now() int64 {
	if f.clock == nil {
		return 0
	}
	return f.clock()
}

// record appends one event. Caller must hold f.mu.
func (f *Flight) record(kind FlightKind, name string, value float64, span, parent uint64, val any) {
	slot := &f.ring[f.total%uint64(len(f.ring))]
	f.total++
	slot.Seq = f.total
	slot.Kind = kind
	slot.Name = name
	slot.Value = value
	slot.Span = span
	slot.Parent = parent
	slot.Val = val
	slot.WallNS = time.Now().UnixNano()
	slot.Step = f.now()
}

// Enabled reports true: a Flight always records.
func (f *Flight) Enabled() bool { return true }

// Count implements Sink.
func (f *Flight) Count(name string, delta int64) {
	f.mu.Lock()
	f.record(FlightCount, name, float64(delta), 0, 0, nil)
	f.mu.Unlock()
}

// SetGauge implements Sink.
func (f *Flight) SetGauge(name string, v int64) {
	f.mu.Lock()
	f.record(FlightGauge, name, float64(v), 0, 0, nil)
	f.mu.Unlock()
}

// Observe implements Sink.
func (f *Flight) Observe(name string, v float64) {
	f.mu.Lock()
	f.record(FlightHist, name, v, 0, 0, nil)
	f.mu.Unlock()
}

// flightSpan is a recycled span handle.
type flightSpan struct {
	f     *Flight
	id    uint64
	name  string
	start time.Time
	ended bool
}

func (s *flightSpan) SetAttr(key string, val any) {
	s.f.mu.Lock()
	if !s.ended {
		s.f.record(FlightAttr, key, 0, s.id, 0, val)
	}
	s.f.mu.Unlock()
}

func (s *flightSpan) End() {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.f.record(FlightEnd, s.name, float64(time.Since(s.start).Nanoseconds()), s.id, 0, nil)
	// Pop this span (and abandoned children above it) off the stack.
	for i := len(s.f.stack) - 1; i >= 0; i-- {
		if s.f.stack[i] == s.id {
			s.f.stack = s.f.stack[:i]
			break
		}
	}
	s.f.free = append(s.f.free, s)
}

// Start implements Sink.
func (f *Flight) Start(name string, attrs ...Attr) Span {
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	var parent uint64
	if n := len(f.stack); n > 0 {
		parent = f.stack[n-1]
	}
	f.stack = append(f.stack, id)
	f.record(FlightBegin, name, 0, id, parent, nil)
	for _, a := range attrs {
		f.record(FlightAttr, a.Key, 0, id, 0, a.Val)
	}
	var s *flightSpan
	if n := len(f.free); n > 0 {
		s = f.free[n-1]
		f.free = f.free[:n-1]
	} else {
		s = &flightSpan{}
	}
	s.f = f
	s.id = id
	s.name = name
	s.start = time.Now()
	s.ended = false
	f.mu.Unlock()
	return s
}

// Cap returns the ring capacity.
func (f *Flight) Cap() int { return len(f.ring) }

// Len returns how many events are currently held (≤ Cap).
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total < uint64(len(f.ring)) {
		return int(f.total)
	}
	return len(f.ring)
}

// TotalEvents returns how many events were ever recorded (including those
// that rotated out of the ring).
func (f *Flight) TotalEvents() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Events returns a snapshot of the held events, oldest first.
func (f *Flight) Events() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

func (f *Flight) eventsLocked() []FlightEvent {
	n := uint64(len(f.ring))
	held := f.total
	if held > n {
		held = n
	}
	out := make([]FlightEvent, 0, held)
	for i := uint64(0); i < held; i++ {
		out = append(out, f.ring[(f.total-held+i)%n])
	}
	return out
}

// Binary encoding (embedded in pmem pool files, format v2):
//
//	u64 flightMagic        "ARTHFLT\1"
//	u64 encoding version   (1)
//	u64 ring capacity
//	u64 total events ever recorded
//	u64 next span id
//	u64 n — events serialized (= min(total, capacity))
//	n × event:
//	  u64 seq, u64 kind, u64 span, u64 parent,
//	  u64 wall_ns (two's complement), u64 step (two's complement),
//	  u64 value (IEEE-754 bits),
//	  str name, str attr value (rendered; empty when none)
//	str = u64 byte length + raw bytes
const (
	flightMagic  uint64 = 0x41525448_464C5401 // "ARTH FLT" v1
	flightEncVer uint64 = 1
	maxFlightCap        = 1 << 24
	maxFlightStr        = 1 << 20
)

// MarshalBinary encodes the flight recorder state (encoding above).
func (f *Flight) MarshalBinary() ([]byte, error) {
	f.mu.Lock()
	events := f.eventsLocked()
	capacity := uint64(len(f.ring))
	total := f.total
	nextID := f.nextID
	f.mu.Unlock()

	var out []byte
	putU := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	putS := func(s string) {
		putU(uint64(len(s)))
		out = append(out, s...)
	}
	putU(flightMagic)
	putU(flightEncVer)
	putU(capacity)
	putU(total)
	putU(nextID)
	putU(uint64(len(events)))
	for _, e := range events {
		putU(e.Seq)
		putU(uint64(e.Kind))
		putU(e.Span)
		putU(e.Parent)
		putU(uint64(e.WallNS))
		putU(uint64(e.Step))
		putU(math.Float64bits(e.Value))
		putS(e.Name)
		putS(RenderVal(e.Val))
	}
	return out, nil
}

// UnmarshalFlight decodes a buffer written by MarshalBinary. The recovered
// recorder keeps recording where the original left off: sequence numbers
// and span ids continue rather than restart.
func UnmarshalFlight(data []byte) (*Flight, error) {
	pos := 0
	getU := func() (uint64, error) {
		if pos+8 > len(data) {
			return 0, fmt.Errorf("obs: truncated flight buffer at byte %d", pos)
		}
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return v, nil
	}
	getS := func() (string, error) {
		n, err := getU()
		if err != nil {
			return "", err
		}
		if n > maxFlightStr || pos+int(n) > len(data) {
			return "", fmt.Errorf("obs: corrupt flight string length %d at byte %d", n, pos)
		}
		s := string(data[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	magic, err := getU()
	if err != nil {
		return nil, err
	}
	if magic != flightMagic {
		return nil, fmt.Errorf("obs: not a flight buffer (magic %#x)", magic)
	}
	ver, err := getU()
	if err != nil {
		return nil, err
	}
	if ver != flightEncVer {
		return nil, fmt.Errorf("obs: flight encoding version %d, want %d", ver, flightEncVer)
	}
	capacity, err := getU()
	if err != nil {
		return nil, err
	}
	if capacity == 0 || capacity > maxFlightCap {
		return nil, fmt.Errorf("obs: implausible flight capacity %d", capacity)
	}
	total, err := getU()
	if err != nil {
		return nil, err
	}
	nextID, err := getU()
	if err != nil {
		return nil, err
	}
	n, err := getU()
	if err != nil {
		return nil, err
	}
	if n > capacity {
		return nil, fmt.Errorf("obs: flight event count %d exceeds capacity %d", n, capacity)
	}
	f := NewFlight(int(capacity))
	if nextID >= 1 {
		f.nextID = nextID
	}
	if total < n {
		total = n
	}
	f.total = total
	for i := uint64(0); i < n; i++ {
		var e FlightEvent
		if e.Seq, err = getU(); err != nil {
			return nil, err
		}
		kind, err := getU()
		if err != nil {
			return nil, err
		}
		e.Kind = FlightKind(kind)
		if e.Span, err = getU(); err != nil {
			return nil, err
		}
		if e.Parent, err = getU(); err != nil {
			return nil, err
		}
		wall, err := getU()
		if err != nil {
			return nil, err
		}
		e.WallNS = int64(wall)
		step, err := getU()
		if err != nil {
			return nil, err
		}
		e.Step = int64(step)
		bits, err := getU()
		if err != nil {
			return nil, err
		}
		e.Value = math.Float64frombits(bits)
		if e.Name, err = getS(); err != nil {
			return nil, err
		}
		val, err := getS()
		if err != nil {
			return nil, err
		}
		if val != "" {
			e.Val = val
		}
		f.ring[(total-n+i)%capacity] = e
	}
	return f, nil
}

// flightLine is one JSONL record of a flight event.
type flightLine struct {
	Seq    uint64  `json:"seq"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name"`
	Value  float64 `json:"value,omitempty"`
	Span   uint64  `json:"span,omitempty"`
	Parent uint64  `json:"parent,omitempty"`
	Val    string  `json:"val,omitempty"`
	WallNS int64   `json:"wall_ns"`
	Step   int64   `json:"step,omitempty"`
	DurNS  int64   `json:"dur_ns,omitempty"`
}

// WriteJSONL streams the held events, oldest first, one JSON object per
// line. FlightEnd events carry their span duration as dur_ns.
func (f *Flight) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range f.Events() {
		line := flightLine{
			Seq: e.Seq, Kind: e.Kind.String(), Name: e.Name,
			Span: e.Span, Parent: e.Parent, Val: RenderVal(e.Val),
			WallNS: e.WallNS, Step: e.Step,
		}
		if e.Kind == FlightEnd {
			line.DurNS = int64(e.Value)
		} else {
			line.Value = e.Value
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimeline renders the held events as a human-readable timeline:
// sequence number, time offset from the first held event, logical step,
// kind, and payload. This is what `arthas-inspect flight` prints.
func (f *Flight) WriteTimeline(w io.Writer) error {
	events := f.Events()
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "flight recorder: no events held")
		return err
	}
	epoch := events[0].WallNS
	fmt.Fprintf(w, "flight recorder: %d event(s) held (of %d recorded, capacity %d)\n",
		len(events), f.TotalEvents(), f.Cap())
	for _, e := range events {
		off := time.Duration(e.WallNS - epoch).Round(time.Microsecond)
		var err error
		switch e.Kind {
		case FlightCount:
			_, err = fmt.Fprintf(w, "  #%04d +%-10v step=%-8d count %-32s +%g\n", e.Seq, off, e.Step, e.Name, e.Value)
		case FlightGauge:
			_, err = fmt.Fprintf(w, "  #%04d +%-10v step=%-8d gauge %-32s =%g\n", e.Seq, off, e.Step, e.Name, e.Value)
		case FlightHist:
			_, err = fmt.Fprintf(w, "  #%04d +%-10v step=%-8d hist  %-32s %g\n", e.Seq, off, e.Step, e.Name, e.Value)
		case FlightBegin:
			_, err = fmt.Fprintf(w, "  #%04d +%-10v step=%-8d begin %-32s span=%d parent=%d\n", e.Seq, off, e.Step, e.Name, e.Span, e.Parent)
		case FlightEnd:
			_, err = fmt.Fprintf(w, "  #%04d +%-10v step=%-8d end   %-32s span=%d dur=%v\n", e.Seq, off, e.Step, e.Name, e.Span, time.Duration(e.Value).Round(time.Microsecond))
		case FlightAttr:
			_, err = fmt.Fprintf(w, "  #%04d +%-10v step=%-8d attr  %-32s span=%d %s=%s\n", e.Seq, off, e.Step, e.Name, e.Span, e.Name, RenderVal(e.Val))
		default:
			_, err = fmt.Fprintf(w, "  #%04d +%-10v step=%-8d %v %s\n", e.Seq, off, e.Step, e.Kind, e.Name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
