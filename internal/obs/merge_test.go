package obs

import "testing"

func TestReplayIntoPreservesTreeAndCounters(t *testing.T) {
	src := NewRecorder()
	root := src.Start("reactor.reexec", A("trial", 0))
	child := src.Start("reactor.revert", A("seq", uint64(5)))
	child.End()
	root.SetAttr("outcome", "recovered")
	root.End()
	second := src.Start("reactor.revert", A("seq", uint64(6)))
	second.End()
	src.Count("pmem.load", 3)
	src.Count("ckpt.reverts", 1)

	dst := NewRecorder()
	outer := dst.Start("reactor.mitigate")
	ReplayInto(dst, src, A("worker", 2))
	outer.End()

	spans := dst.Spans()
	if len(spans) != 4 {
		t.Fatalf("replayed %d spans, want 4", len(spans))
	}
	byName := map[string][]*SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	reexec := byName["reactor.reexec"][0]
	if reexec.Parent != byName["reactor.mitigate"][0].ID {
		t.Fatal("replayed root did not nest under the active span")
	}
	// The recorded child must re-nest under the replayed root, and the
	// recorded sibling root must NOT.
	var nested, sibling *SpanRecord
	for _, s := range byName["reactor.revert"] {
		if s.Parent == reexec.ID {
			nested = s
		} else {
			sibling = s
		}
	}
	if nested == nil {
		t.Fatal("child span lost its parent on replay")
	}
	if sibling == nil || sibling.Parent != byName["reactor.mitigate"][0].ID {
		t.Fatal("sibling root span gained a wrong parent on replay")
	}
	// Extra attrs and the recorded duration ride along.
	found := map[string]bool{}
	for _, a := range reexec.Attrs {
		found[a.Key] = true
	}
	for _, k := range []string{"trial", "outcome", "worker", "replayed_dur_ns"} {
		if !found[k] {
			t.Fatalf("replayed span missing attr %q (has %v)", k, reexec.Attrs)
		}
	}
	if dst.CounterValue("pmem.load") != 3 || dst.CounterValue("ckpt.reverts") != 1 {
		t.Fatal("counters did not replay")
	}
}

func TestReplayIntoNilAndDisabled(t *testing.T) {
	ReplayInto(NewRecorder(), nil)   // no-op
	ReplayInto(Nop(), NewRecorder()) // no-op
}
