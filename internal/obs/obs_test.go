package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNopSink(t *testing.T) {
	s := Nop()
	if s.Enabled() {
		t.Fatal("nop sink reports enabled")
	}
	// All operations must be safe and do nothing.
	s.Count("x", 1)
	s.SetGauge("y", 2)
	s.Observe("z", 3)
	sp := s.Start("span", A("k", "v"))
	sp.SetAttr("k2", 7)
	sp.End()

	if OrNop(nil) != Nop() {
		t.Fatal("OrNop(nil) is not the nop sink")
	}
	if Enabled(nil) || Enabled(Nop()) {
		t.Fatal("nil/nop sinks report enabled")
	}
}

func TestRecorderMetrics(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	r.Count("pmem.store", 1)
	r.Count("pmem.store", 2)
	r.SetGauge("pmem.dirty_words", 9)
	r.SetGauge("pmem.dirty_words", 4)
	r.Observe("ckpt.hook.ns", 100)
	r.Observe("ckpt.hook.ns", 300)

	if got := r.CounterValue("pmem.store"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := r.GaugeValue("pmem.dirty_words"); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	h := r.Histogram("ckpt.hook.ns")
	if h == nil || h.Count != 2 || h.Min != 100 || h.Max != 300 || h.Mean() != 200 {
		t.Fatalf("hist = %+v", h)
	}
	if r.CounterValue("absent") != 0 || r.GaugeValue("absent") != 0 || r.Histogram("absent") != nil {
		t.Fatal("absent metrics not zero-valued")
	}
}

func TestRecorderSpanNesting(t *testing.T) {
	r := NewRecorder()
	step := int64(0)
	r.SetClock(func() int64 { return step })

	root := r.Start("pipeline.run")
	step = 10
	child := r.Start("vm.call", A("fn", "put"))
	child.SetAttr("trap", "none")
	step = 25
	child.End()
	root.End()
	sibling := r.Start("pipeline.detect")
	sibling.End()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Parent != 0 || spans[2].Parent != 0 {
		t.Fatal("root spans have parents")
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatal("child span not parented to the active span")
	}
	if spans[1].StartStep != 10 || spans[1].EndStep != 25 {
		t.Fatalf("logical stamps = %d..%d, want 10..25", spans[1].StartStep, spans[1].EndStep)
	}
	if len(spans[1].Attrs) != 2 {
		t.Fatalf("child attrs = %v", spans[1].Attrs)
	}
	if got := r.SpanNames(); strings.Join(got, ",") != "pipeline.run,vm.call,pipeline.detect" {
		t.Fatalf("span order = %v", got)
	}
	if r.SpanCount("vm.call") != 1 || r.SpanCount("nope") != 0 {
		t.Fatal("SpanCount wrong")
	}
}

func TestSpanEndIdempotentAndAbandonedChildren(t *testing.T) {
	r := NewRecorder()
	root := r.Start("outer")
	r.Start("abandoned") // never ended
	root.End()
	root.End() // second End must be a no-op

	// After the root ended, new spans must not be parented to the
	// abandoned child left above it on the stack.
	next := r.Start("next")
	next.End()
	spans := r.Spans()
	if spans[2].Parent != 0 {
		t.Fatalf("span after root End parented to %d", spans[2].Parent)
	}
	if !spans[0].Ended || spans[1].Ended {
		t.Fatal("Ended flags wrong")
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder()
	sp := r.Start("reactor.revert", A("seq", 7))
	sp.End()
	r.Count("pmem.store", 5)
	r.SetGauge("ckpt.entries", 2)
	r.Observe("ckpt.hook.ns", 42)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		typ, _ := line["type"].(string)
		types[typ]++
		if typ == "span" {
			attrs, _ := line["attrs"].(map[string]any)
			if attrs["seq"] != float64(7) {
				t.Fatalf("span attrs = %v", line["attrs"])
			}
		}
	}
	if types["span"] != 1 || types["counter"] != 1 || types["gauge"] != 1 || types["hist"] != 1 {
		t.Fatalf("line types = %v", types)
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder()
	root := r.Start("pipeline.run")
	child := r.Start("vm.call")
	child.End()
	root.End()
	r.Count("pmem.store", 3)
	r.SetGauge("ckpt.entries", 1)
	r.Observe("ckpt.hook.ns", 10)

	s := r.Summary()
	for _, want := range []string{"pipeline.run", "vm.call", "pmem.store", "ckpt.entries", "ckpt.hook.ns"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	// The child renders deeper than the root.
	runLine, callLine := "", ""
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "pipeline.run") {
			runLine = line
		}
		if strings.Contains(line, "vm.call") {
			callLine = line
		}
	}
	if indent(callLine) <= indent(runLine) {
		t.Fatalf("child not indented:\n%s", s)
	}
}

func indent(s string) int {
	return len(s) - len(strings.TrimLeft(s, " "))
}

func TestMulti(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	m := Multi(a, nil, Nop(), b)
	if !m.Enabled() {
		t.Fatal("multi not enabled")
	}
	m.Count("c", 2)
	m.SetGauge("g", 3)
	m.Observe("h", 4)
	sp := m.Start("s", A("k", 1))
	sp.SetAttr("k2", 2)
	sp.End()
	for _, r := range []*Recorder{a, b} {
		if r.CounterValue("c") != 2 || r.GaugeValue("g") != 3 || r.Histogram("h").Count != 1 {
			t.Fatal("multi did not fan out metrics")
		}
		spans := r.Spans()
		if len(spans) != 1 || !spans[0].Ended || len(spans[0].Attrs) != 2 {
			t.Fatal("multi did not fan out spans")
		}
	}
	if Multi() != Nop() || Multi(nil, Nop()) != Nop() {
		t.Fatal("empty Multi is not nop")
	}
	if s := Multi(a, nil); s != Sink(a) {
		t.Fatal("single-member Multi not unwrapped")
	}
}

func TestWireClock(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	step := int64(5)
	WireClock(Multi(a, b), func() int64 { return step })
	WireClock(Nop(), func() int64 { return step }) // must not panic
	sa := a.Start("x")
	sa.End()
	sb := b.Start("y")
	sb.End()
	if a.Spans()[0].StartStep != 5 || b.Spans()[0].StartStep != 5 {
		t.Fatal("clock not wired through Multi")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.Count("c", 1)
	sp := r.Start("s")
	r.Reset()
	sp.End() // ending a pre-reset span must not corrupt state
	if r.CounterValue("c") != 0 || len(r.Spans()) != 0 {
		t.Fatal("reset did not clear")
	}
	nsp := r.Start("t")
	nsp.End()
	if got := r.Spans(); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("post-reset spans = %+v", got)
	}
}

func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Count("c", 1)
				r.Observe("h", float64(i))
				sp := r.Start("s")
				sp.SetAttr("i", i)
				sp.End()
				if i%100 == 0 {
					var buf bytes.Buffer
					_ = r.WriteJSONL(&buf)
					_ = r.Summary()
				}
			}
		}()
	}
	wg.Wait()
	if r.CounterValue("c") != 8*500 {
		t.Fatalf("counter = %d", r.CounterValue("c"))
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	h.observe(0.5) // bucket 0
	h.observe(1)   // bucket 1
	h.observe(3)   // bucket 2
	h.observe(1 << 40)
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", h.Buckets[:4])
	}
	if h.Count != 4 || h.Min != 0.5 || h.Max != 1<<40 {
		t.Fatalf("digest = %+v", h)
	}
}
