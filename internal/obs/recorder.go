package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Hist summarizes one histogram: a count/sum/min/max digest plus power-of-two
// buckets (bucket i counts samples in [2^(i-1), 2^i); bucket 0 counts v < 1).
// Power-of-two buckets keep recording allocation-free while preserving the
// latency shape well enough for overhead hunting.
type Hist struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets [64]int64
}

// Mean returns the histogram mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the power-of-two
// buckets: the bucket holding the target rank is located and the value is
// interpolated linearly between the bucket's bounds, then clamped to the
// exact [Min, Max] the histogram observed. The estimate is therefore never
// off by more than one bucket width (a factor of two), and degenerate
// distributions (all samples equal) come back exact via the clamp.
func (h *Hist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count-1) // 0-based fractional rank
	cum := 0.0
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		bc := float64(c)
		if rank < cum+bc {
			lo, hi := bucketBounds(i)
			if hi > h.Max {
				hi = h.Max
			}
			v := lo + (hi-lo)*(rank-cum)/bc
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
		cum += bc
	}
	return h.Max
}

// bucketBounds returns bucket i's value range: bucket 0 holds v < 1,
// bucket i holds [2^(i-1), 2^i).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}

// Add records one sample into a standalone histogram — for callers (the
// workload driver) that aggregate latency locally before merging digests,
// rather than through a Recorder.
func (h *Hist) Add(v float64) { h.observe(v) }

func (h *Hist) observe(v float64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	b := 0
	for x := v; x >= 1 && b < len(h.Buckets)-1; x /= 2 {
		b++
	}
	h.Buckets[b]++
}

// SpanRecord is one recorded span. ID 0 is never issued; Parent 0 means root.
type SpanRecord struct {
	ID     uint64
	Parent uint64
	Name   string
	Attrs  []Attr

	Start     time.Time
	StartStep int64
	Dur       time.Duration
	EndStep   int64
	Ended     bool
}

// Recorder is the standard Sink implementation: it accumulates metrics and
// spans in memory, stamps spans with wall-clock time plus an optional logical
// clock, and renders the result as JSONL (WriteJSONL) or text (Summary).
// All methods are safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	clock    func() int64 // logical clock; nil = always 0
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Hist
	order    map[string]int // first-seen order per metric name
	nextOrd  int
	spans    []*SpanRecord // in start order
	stack    []*SpanRecord // active spans, innermost last
	nextID   uint64

	// Streaming mode (StreamTo): spans are written out as they end so a
	// crash mid-run loses at most the still-open spans, not the whole trace.
	stream      *json.Encoder
	streamErr   error
	streamEpoch time.Time
	epochSet    bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		hists:    map[string]*Hist{},
		order:    map[string]int{},
		nextID:   1,
	}
}

// SetClock installs the logical clock used to stamp span start/end steps
// (typically the VM's Steps). A nil clock stamps 0.
func (r *Recorder) SetClock(clock func() int64) {
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

func (r *Recorder) now() int64 {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

func (r *Recorder) noteOrder(name string) {
	if _, ok := r.order[name]; !ok {
		r.order[name] = r.nextOrd
		r.nextOrd++
	}
}

// Enabled reports true: a Recorder always records.
func (r *Recorder) Enabled() bool { return true }

// Count implements Sink.
func (r *Recorder) Count(name string, delta int64) {
	r.mu.Lock()
	r.noteOrder(name)
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge implements Sink.
func (r *Recorder) SetGauge(name string, v int64) {
	r.mu.Lock()
	r.noteOrder(name)
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe implements Sink.
func (r *Recorder) Observe(name string, v float64) {
	r.mu.Lock()
	r.noteOrder(name)
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// span is the live handle behind Recorder.Start.
type span struct {
	r   *Recorder
	rec *SpanRecord
}

func (s *span) SetAttr(key string, val any) {
	s.r.mu.Lock()
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Val: val})
	s.r.mu.Unlock()
}

func (s *span) End() {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if s.rec.Ended {
		return
	}
	s.rec.Ended = true
	s.rec.Dur = time.Since(s.rec.Start)
	s.rec.EndStep = s.r.now()
	// Pop this span (and any abandoned children above it) off the stack.
	for i := len(s.r.stack) - 1; i >= 0; i-- {
		if s.r.stack[i] == s.rec {
			s.r.stack = s.r.stack[:i]
			break
		}
	}
	s.r.streamSpanLocked(s.rec)
}

// Start implements Sink.
func (r *Recorder) Start(name string, attrs ...Attr) Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := &SpanRecord{
		ID:        r.nextID,
		Name:      name,
		Attrs:     append([]Attr(nil), attrs...),
		Start:     time.Now(),
		StartStep: r.now(),
	}
	r.nextID++
	if n := len(r.stack); n > 0 {
		rec.Parent = r.stack[n-1].ID
	}
	r.spans = append(r.spans, rec)
	r.stack = append(r.stack, rec)
	return &span{r: r, rec: rec}
}

// CounterValue returns a counter's current value (0 when absent).
func (r *Recorder) CounterValue(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// GaugeValue returns a gauge's current value (0 when absent).
func (r *Recorder) GaugeValue(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Quantile estimates the q-quantile of a named histogram (0 when absent).
// See Hist.Quantile for the estimation error bound.
func (r *Recorder) Quantile(name string, q float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return 0
	}
	return h.Quantile(q)
}

// Histogram returns a copy of a named histogram (nil when absent).
func (r *Recorder) Histogram(name string) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return nil
	}
	cp := *h
	return &cp
}

// Spans returns a snapshot of all recorded spans in start order.
func (r *Recorder) Spans() []*SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*SpanRecord, len(r.spans))
	for i, s := range r.spans {
		cp := *s
		cp.Attrs = append([]Attr(nil), s.Attrs...)
		out[i] = &cp
	}
	return out
}

// SpanNames returns the recorded span names in start order.
func (r *Recorder) SpanNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.spans))
	for i, s := range r.spans {
		out[i] = s.Name
	}
	return out
}

// SpanCount returns how many spans with the given name were started.
func (r *Recorder) SpanCount(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.spans {
		if s.Name == name {
			n++
		}
	}
	return n
}

// Reset drops all recorded data (metric registration order included) but
// keeps the clock. Active spans are abandoned.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]int64{}
	r.gauges = map[string]int64{}
	r.hists = map[string]*Hist{}
	r.order = map[string]int{}
	r.nextOrd = 0
	r.spans = nil
	r.stack = nil
	r.nextID = 1
}
