package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the recorder's metrics in the Prometheus text
// exposition format (version 0.0.4): counters as `counter`, gauges as
// `gauge`, and histograms as summary-style quantile series plus `_sum` and
// `_count`. Metric names are sanitized (dots and dashes become underscores)
// and prefixed `arthas_` so the scrape namespace stays clean. Spans are not
// exported — they belong to the JSONL/flight surface.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	snap := r.metricsSnapshotLocked()
	r.mu.Unlock()

	// The exposition format requires unique, sorted-by-name metric families;
	// sanitization can collide names (a.b vs a-b), so merge via a map keyed
	// by the sanitized name and emit alphabetically.
	type family struct {
		typ   string
		lines []string
	}
	fams := map[string]*family{}
	add := func(name, typ string, lines ...string) {
		f := fams[name]
		if f == nil {
			f = &family{typ: typ}
			fams[name] = f
		}
		f.lines = append(f.lines, lines...)
	}
	for _, n := range snap.counters {
		pn := promName(n)
		add(pn, "counter", fmt.Sprintf("%s %d", pn, snap.cvals[n]))
	}
	for _, n := range snap.gauges {
		pn := promName(n)
		add(pn, "gauge", fmt.Sprintf("%s %d", pn, snap.gvals[n]))
	}
	for _, n := range snap.histNames {
		h := snap.hvals[n]
		pn := promName(n)
		add(pn, "summary",
			fmt.Sprintf("%s{quantile=\"0.5\"} %s", pn, promFloat(h.Quantile(0.5))),
			fmt.Sprintf("%s{quantile=\"0.99\"} %s", pn, promFloat(h.Quantile(0.99))),
			fmt.Sprintf("%s_sum %s", pn, promFloat(h.Sum)),
			fmt.Sprintf("%s_count %d", pn, h.Count),
		)
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName sanitizes a recorder metric name into a Prometheus metric name:
// every character outside [a-zA-Z0-9_] becomes '_', and the whole name is
// prefixed with "arthas_".
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name) + 7)
	sb.WriteString("arthas_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float the way Prometheus expects (no exponent for the
// magnitudes we emit; %g keeps integers clean).
func promFloat(v float64) string { return fmt.Sprintf("%g", v) }
