package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// HealthState is what the /healthz endpoint reports. The zero value means
// healthy.
type HealthState struct {
	// Degraded mirrors the pool's media-degraded flag (header block
	// unreconstructible; serving with reduced guarantees).
	Degraded bool
	// QuarantinedBlocks counts media blocks fenced off by the scrubber.
	QuarantinedBlocks int
	// Mitigating marks a reactor mitigation in flight.
	Mitigating bool
}

// HealthFunc supplies the current health state; nil means "no health wiring"
// and /healthz degenerates to the legacy always-"ok" liveness probe.
type HealthFunc func() HealthState

// NewDebugMux builds the live debug surface shared by arthas-run and
// arthas-react's -debug flag:
//
//	/debug/pprof/*  net/http/pprof profiles (CPU, heap, goroutines, ...)
//	/metrics        the Recorder's text summary (spans + counters + hists);
//	                ?format=prom or "Accept: …openmetrics/prometheus…"
//	                switches to Prometheus text exposition
//	/healthz        health probe: 200 "ok" when healthy, 503 with a reason
//	                while mitigating or degraded/quarantined (nil health
//	                func restores the legacy always-"ok" liveness probe)
//	/flight         the flight recorder's current tail as JSONL
//
// A nil rec or fl turns the corresponding endpoint into a 404 so callers
// can wire up whatever subset they run with.
func NewDebugMux(rec *Recorder, fl *Flight, health HealthFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health == nil {
			io.WriteString(w, "ok\n")
			return
		}
		st := health()
		switch {
		case st.Mitigating:
			http.Error(w, "mitigating", http.StatusServiceUnavailable)
		case st.Degraded || st.QuarantinedBlocks > 0:
			http.Error(w, fmt.Sprintf("degraded (quarantined_blocks=%d)", st.QuarantinedBlocks),
				http.StatusServiceUnavailable)
		default:
			io.WriteString(w, "ok\n")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "no recorder attached", http.StatusNotFound)
			return
		}
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			rec.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, rec.Summary())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		if fl == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl.WriteJSONL(w) //nolint:errcheck // client went away; nothing to do
	})
	return mux
}

// wantsProm selects the Prometheus exposition: explicit ?format=prom wins,
// otherwise an Accept header naming a prometheus/openmetrics media type.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "text", "summary":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain; version=0.0.4") ||
		strings.Contains(accept, "prometheus")
}

// ServeDebug binds addr (":0" picks a free port), serves the debug mux in
// a background goroutine, and returns the server plus the bound address.
// The caller owns shutdown; for CLI tools process exit is fine.
func ServeDebug(addr string, rec *Recorder, fl *Flight, health HealthFunc) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewDebugMux(rec, fl, health)}
	go srv.Serve(ln) //nolint:errcheck // always ErrServerClosed at exit
	return srv, ln.Addr().String(), nil
}
