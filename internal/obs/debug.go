package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// HealthState is what the /healthz endpoint reports. The zero value means
// healthy.
type HealthState struct {
	// Degraded mirrors the pool's media-degraded flag (header block
	// unreconstructible; serving with reduced guarantees).
	Degraded bool
	// QuarantinedBlocks counts media blocks fenced off by the scrubber.
	QuarantinedBlocks int
	// Mitigating marks a reactor mitigation in flight.
	Mitigating bool
}

// Status renders the state's worst condition. Mitigating outranks degraded:
// a mitigating shard is actively unavailable, a degraded one still serves
// (with reduced guarantees) but should shed load.
func (h HealthState) Status() string {
	switch {
	case h.Mitigating:
		return "mitigating"
	case h.Degraded || h.QuarantinedBlocks > 0:
		return "degraded"
	default:
		return "ok"
	}
}

// Healthy reports whether the state carries no adverse condition.
func (h HealthState) Healthy() bool { return h.Status() == "ok" }

// severity orders statuses for worst-of aggregation.
func (h HealthState) severity() int {
	switch h.Status() {
	case "mitigating":
		return 2
	case "degraded":
		return 1
	}
	return 0
}

// HealthFunc supplies the current health state; nil means "no health wiring"
// and /healthz degenerates to the legacy always-"ok" liveness probe.
type HealthFunc func() HealthState

// ShardHealth is one shard's health snapshot within a serving fleet.
type ShardHealth struct {
	Shard int
	HealthState
}

// FleetHealthFunc supplies per-shard health for a multi-instance fleet, in
// shard order. HealthFunc assumes one instance; this is its fleet analogue.
type FleetHealthFunc func() []ShardHealth

// WorstOf aggregates per-shard health into one fleet-level state: any shard
// mitigating makes the fleet report mitigating, any degraded/quarantined
// shard makes it degraded, and quarantined block counts sum.
func WorstOf(shards []ShardHealth) HealthState {
	var agg HealthState
	for _, s := range shards {
		agg.Mitigating = agg.Mitigating || s.Mitigating
		agg.Degraded = agg.Degraded || s.Degraded
		agg.QuarantinedBlocks += s.QuarantinedBlocks
	}
	return agg
}

// NewDebugMux builds the live debug surface shared by arthas-run and
// arthas-react's -debug flag:
//
//	/debug/pprof/*  net/http/pprof profiles (CPU, heap, goroutines, ...)
//	/metrics        the Recorder's text summary (spans + counters + hists);
//	                ?format=prom or "Accept: …openmetrics/prometheus…"
//	                switches to Prometheus text exposition
//	/healthz        health probe: 200 "ok" when healthy, 503 with a reason
//	                while mitigating or degraded/quarantined (nil health
//	                func restores the legacy always-"ok" liveness probe)
//	/flight         the flight recorder's current tail as JSONL
//
// A nil rec or fl turns the corresponding endpoint into a 404 so callers
// can wire up whatever subset they run with.
func NewDebugMux(rec *Recorder, fl *Flight, health HealthFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health == nil {
			io.WriteString(w, "ok\n")
			return
		}
		st := health()
		switch {
		case st.Mitigating:
			http.Error(w, "mitigating", http.StatusServiceUnavailable)
		case st.Degraded || st.QuarantinedBlocks > 0:
			http.Error(w, fmt.Sprintf("degraded (quarantined_blocks=%d)", st.QuarantinedBlocks),
				http.StatusServiceUnavailable)
		default:
			io.WriteString(w, "ok\n")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "no recorder attached", http.StatusNotFound)
			return
		}
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			rec.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, rec.Summary())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		if fl == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl.WriteJSONL(w) //nolint:errcheck // client went away; nothing to do
	})
	return mux
}

// wantsProm selects the Prometheus exposition: explicit ?format=prom wins,
// otherwise an Accept header naming a prometheus/openmetrics media type.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "text", "summary":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain; version=0.0.4") ||
		strings.Contains(accept, "prometheus")
}

// FleetHealthHandler serves aggregated multi-shard health as JSON: an
// overall worst-of status plus one entry per shard. The HTTP code follows
// the worst-of state (200 healthy, 503 mitigating/degraded), so the probe
// composes with load balancers the same way the single-instance one does
// while still naming exactly which shard is unwell:
//
//	{"status":"mitigating","shards":[
//	  {"shard":0,"status":"ok"},
//	  {"shard":1,"status":"mitigating"}]}
func FleetHealthHandler(health FleetHealthFunc) http.HandlerFunc {
	type shardJSON struct {
		Shard             int    `json:"shard"`
		Status            string `json:"status"`
		QuarantinedBlocks int    `json:"quarantined_blocks,omitempty"`
	}
	type fleetJSON struct {
		Status string      `json:"status"`
		Shards []shardJSON `json:"shards"`
	}
	return func(w http.ResponseWriter, _ *http.Request) {
		shards := health()
		agg := WorstOf(shards)
		resp := fleetJSON{Status: agg.Status(), Shards: make([]shardJSON, len(shards))}
		for i, s := range shards {
			resp.Shards[i] = shardJSON{Shard: s.Shard, Status: s.Status(), QuarantinedBlocks: s.QuarantinedBlocks}
		}
		w.Header().Set("Content-Type", "application/json")
		if !agg.Healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.Encode(resp) //nolint:errcheck // client went away; nothing to do
	}
}

// WriteFleetHealthProm appends per-shard health to a Prometheus exposition:
// one labeled gauge per shard carrying its severity (0 ok, 1 degraded, 2
// mitigating), per-shard quarantined block counts, and the fleet-wide
// worst-of severity.
func WriteFleetHealthProm(w io.Writer, shards []ShardHealth) error {
	if _, err := fmt.Fprintln(w, "# TYPE arthas_fleet_shard_health gauge"); err != nil {
		return err
	}
	for _, s := range shards {
		if _, err := fmt.Fprintf(w, "arthas_fleet_shard_health{shard=\"%d\",state=\"%s\"} %d\n",
			s.Shard, s.Status(), s.severity()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "# TYPE arthas_fleet_shard_quarantined_blocks gauge"); err != nil {
		return err
	}
	for _, s := range shards {
		if _, err := fmt.Fprintf(w, "arthas_fleet_shard_quarantined_blocks{shard=\"%d\"} %d\n",
			s.Shard, s.QuarantinedBlocks); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE arthas_fleet_health_worst gauge\narthas_fleet_health_worst %d\n",
		WorstOf(shards).severity())
	return err
}

// NewFleetMux is NewDebugMux for a serving fleet: pprof under /debug/pprof,
// merged fleet metrics on /metrics (text summary by default, Prometheus
// exposition — with the per-shard health gauges appended — via ?format=prom
// or Accept negotiation), and the aggregated JSON health probe on /healthz.
// metrics is called per request so it can merge per-shard recorders on
// demand; a nil metrics func turns /metrics into a 404.
func NewFleetMux(metrics func() *Recorder, health FleetHealthFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", FleetHealthHandler(health))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if metrics == nil {
			http.Error(w, "no recorder attached", http.StatusNotFound)
			return
		}
		rec := metrics()
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			rec.WritePrometheus(w)            //nolint:errcheck // client went away
			WriteFleetHealthProm(w, health()) //nolint:errcheck // client went away
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, rec.Summary()) //nolint:errcheck // client went away
	})
	return mux
}

// ServeDebug binds addr (":0" picks a free port), serves the debug mux in
// a background goroutine, and returns the server plus the bound address.
// The caller owns shutdown; for CLI tools process exit is fine.
func ServeDebug(addr string, rec *Recorder, fl *Flight, health HealthFunc) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewDebugMux(rec, fl, health)}
	go srv.Serve(ln) //nolint:errcheck // always ErrServerClosed at exit
	return srv, ln.Addr().String(), nil
}
