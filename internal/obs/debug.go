package obs

import (
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the live debug surface shared by arthas-run and
// arthas-react's -debug flag:
//
//	/debug/pprof/*  net/http/pprof profiles (CPU, heap, goroutines, ...)
//	/metrics        the Recorder's text summary (spans + counters + hists)
//	/healthz        liveness probe, always "ok"
//	/flight         the flight recorder's current tail as JSONL
//
// A nil rec or fl turns the corresponding endpoint into a 404 so callers
// can wire up whatever subset they run with.
func NewDebugMux(rec *Recorder, fl *Flight) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if rec == nil {
			http.Error(w, "no recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, rec.Summary())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		if fl == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl.WriteJSONL(w) //nolint:errcheck // client went away; nothing to do
	})
	return mux
}

// ServeDebug binds addr (":0" picks a free port), serves the debug mux in
// a background goroutine, and returns the server plus the bound address.
// The caller owns shutdown; for CLI tools process exit is fine.
func ServeDebug(addr string, rec *Recorder, fl *Flight) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewDebugMux(rec, fl)}
	go srv.Serve(ln) //nolint:errcheck // always ErrServerClosed at exit
	return srv, ln.Addr().String(), nil
}
