package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr.Code, rr.Body.String()
}

func TestDebugMuxEndpoints(t *testing.T) {
	rec := NewRecorder()
	rec.Count("vm.steps", 7)
	rec.Start("run.script").End()
	fl := NewFlight(16)
	fl.Count("pmem.store.words", 3)
	mux := NewDebugMux(rec, fl, nil)

	if code, body := get(t, mux, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, mux, "/metrics"); code != 200 ||
		!strings.Contains(body, "vm.steps") || !strings.Contains(body, "run.script") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body := get(t, mux, "/flight")
	if code != 200 || !strings.Contains(body, `"pmem.store.words"`) {
		t.Fatalf("/flight = %d %q", code, body)
	}
	if code, _ := get(t, mux, "/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestDebugMuxNilComponents(t *testing.T) {
	mux := NewDebugMux(nil, nil, nil)
	if code, _ := get(t, mux, "/metrics"); code != 404 {
		t.Fatalf("/metrics with nil recorder = %d, want 404", code)
	}
	if code, _ := get(t, mux, "/flight"); code != 404 {
		t.Fatalf("/flight with nil flight = %d, want 404", code)
	}
	if code, _ := get(t, mux, "/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
}

func TestHealthzStates(t *testing.T) {
	st := HealthState{}
	mux := NewDebugMux(nil, nil, func() HealthState { return st })

	if code, body := get(t, mux, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}
	st = HealthState{Mitigating: true}
	if code, body := get(t, mux, "/healthz"); code != 503 || !strings.Contains(body, "mitigating") {
		t.Fatalf("mitigating /healthz = %d %q", code, body)
	}
	st = HealthState{Degraded: true}
	if code, body := get(t, mux, "/healthz"); code != 503 || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded /healthz = %d %q", code, body)
	}
	st = HealthState{QuarantinedBlocks: 3}
	code, body := get(t, mux, "/healthz")
	if code != 503 || !strings.Contains(body, "quarantined_blocks=3") {
		t.Fatalf("quarantined /healthz = %d %q", code, body)
	}
	// Mitigating takes precedence over degraded in the message.
	st = HealthState{Mitigating: true, Degraded: true}
	if code, body := get(t, mux, "/healthz"); code != 503 || !strings.Contains(body, "mitigating") {
		t.Fatalf("mitigating+degraded /healthz = %d %q", code, body)
	}
}

func TestMetricsPromExposition(t *testing.T) {
	rec := NewRecorder()
	rec.Count("vm.instructions", 42)
	rec.SetGauge("ckpt.total_versions", 7)
	rec.Observe("prov.site.persisted_words", 8)
	rec.Observe("prov.site.persisted_words", 16)
	mux := NewDebugMux(rec, nil, nil)

	// Default stays the human summary.
	if _, body := get(t, mux, "/metrics"); !strings.Contains(body, "counters:") {
		t.Fatalf("default /metrics lost the summary: %q", body)
	}
	// ?format=prom switches to exposition format.
	code, body := get(t, mux, "/metrics?format=prom")
	if code != 200 {
		t.Fatalf("/metrics?format=prom = %d", code)
	}
	for _, want := range []string{
		"# TYPE arthas_vm_instructions counter",
		"arthas_vm_instructions 42",
		"# TYPE arthas_ckpt_total_versions gauge",
		"arthas_ckpt_total_versions 7",
		"# TYPE arthas_prov_site_persisted_words summary",
		`arthas_prov_site_persisted_words{quantile="0.5"}`,
		"arthas_prov_site_persisted_words_sum 24",
		"arthas_prov_site_persisted_words_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom exposition missing %q in:\n%s", want, body)
		}
	}

	// Accept-header negotiation also selects the exposition.
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0")
	mux.ServeHTTP(rr, req)
	if !strings.Contains(rr.Body.String(), "arthas_vm_instructions 42") {
		t.Fatalf("Accept negotiation did not select prom format: %q", rr.Body.String())
	}
}

func TestServeDebugBindsEphemeralPort(t *testing.T) {
	rec := NewRecorder()
	rec.Count("c", 1)
	srv, addr, err := ServeDebug("127.0.0.1:0", rec, NewFlight(16), nil)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "c") {
		t.Fatalf("live /metrics = %d %q", resp.StatusCode, body)
	}
}
