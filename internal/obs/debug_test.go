package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr.Code, rr.Body.String()
}

func TestDebugMuxEndpoints(t *testing.T) {
	rec := NewRecorder()
	rec.Count("vm.steps", 7)
	rec.Start("run.script").End()
	fl := NewFlight(16)
	fl.Count("pmem.store.words", 3)
	mux := NewDebugMux(rec, fl)

	if code, body := get(t, mux, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, mux, "/metrics"); code != 200 ||
		!strings.Contains(body, "vm.steps") || !strings.Contains(body, "run.script") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body := get(t, mux, "/flight")
	if code != 200 || !strings.Contains(body, `"pmem.store.words"`) {
		t.Fatalf("/flight = %d %q", code, body)
	}
	if code, _ := get(t, mux, "/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestDebugMuxNilComponents(t *testing.T) {
	mux := NewDebugMux(nil, nil)
	if code, _ := get(t, mux, "/metrics"); code != 404 {
		t.Fatalf("/metrics with nil recorder = %d, want 404", code)
	}
	if code, _ := get(t, mux, "/flight"); code != 404 {
		t.Fatalf("/flight with nil flight = %d, want 404", code)
	}
	if code, _ := get(t, mux, "/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
}

func TestServeDebugBindsEphemeralPort(t *testing.T) {
	rec := NewRecorder()
	rec.Count("c", 1)
	srv, addr, err := ServeDebug("127.0.0.1:0", rec, NewFlight(16))
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "c") {
		t.Fatalf("live /metrics = %d %q", resp.StatusCode, body)
	}
}
