package obs

import "testing"

// WireClock must descend through a Multi fan-out and wire every Clockable
// member, so spans recorded via the composite sink carry logical time on
// both the recorder and the flight ring.
func TestWireClockThroughMulti(t *testing.T) {
	rec := NewRecorder()
	fl := NewFlight(16)
	m := Multi(rec, fl)
	if _, ok := m.(interface{ Enabled() bool }); !ok {
		t.Fatal("Multi did not return a sink")
	}

	step := int64(100)
	WireClock(m, func() int64 { return step })

	sp := m.Start("phase.one")
	step = 150
	sp.End()

	var got *SpanRecord
	for _, s := range rec.Spans() {
		if s.Name == "phase.one" {
			got = s
			break
		}
	}
	if got == nil {
		t.Fatal("recorder missed the span sent through Multi")
	}
	if got.StartStep != 100 || got.EndStep != 150 {
		t.Fatalf("recorder span steps = %d..%d, want 100..150", got.StartStep, got.EndStep)
	}

	// The flight member must have been wired too: its events carry steps.
	found := false
	for _, ev := range fl.Events() {
		if ev.Name == "phase.one" && ev.Step >= 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("flight ring missed the clocked span; events: %+v", fl.Events())
	}
}

// Multi must drop nil and no-op members: a composite of one live sink is
// that sink itself, and a composite of none is the no-op.
func TestMultiDropsDisabledMembers(t *testing.T) {
	rec := NewRecorder()
	if got := Multi(nil, Nop(), rec); got != Sink(rec) {
		t.Fatalf("Multi(nil, nop, rec) = %T, want the recorder itself", got)
	}
	if got := Multi(nil, Nop()); got.Enabled() {
		t.Fatal("Multi of only disabled members should be the no-op")
	}
	// Two live members fan out counts to both.
	rec2 := NewRecorder()
	m := Multi(rec, rec2)
	m.Count("x", 3)
	if rec.CounterValue("x") != 3 || rec2.CounterValue("x") != 3 {
		t.Fatalf("fan-out counts = %d, %d, want 3, 3",
			rec.CounterValue("x"), rec2.CounterValue("x"))
	}
}
