package obs

import "testing"

// The disabled path must be free: a component holding the nop sink behind a
// cached enabled bool pays one predictable branch, and even unguarded nop
// calls must not allocate.

func BenchmarkNopCount(b *testing.B) {
	s := Nop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Count("pmem.store", 1)
	}
}

func BenchmarkNopSpan(b *testing.B) {
	s := Nop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := s.Start("pipeline.run")
		sp.End()
	}
}

func BenchmarkGuardedDisabled(b *testing.B) {
	// The idiom every hot path uses: branch on a cached bool.
	s := Nop()
	on := s.Enabled()
	b.ReportAllocs()
	n := int64(0)
	for i := 0; i < b.N; i++ {
		if on {
			s.Count("pmem.store", 1)
		}
		n++
	}
	_ = n
}

func BenchmarkRecorderCount(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Count("pmem.store", 1)
	}
}

func BenchmarkRecorderSpan(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start("vm.call")
		sp.End()
	}
}

func TestNopZeroAlloc(t *testing.T) {
	s := Nop()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Count("pmem.store", 1)
		s.SetGauge("g", 1)
		s.Observe("h", 1)
		sp := s.Start("span")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nop sink allocates: %v allocs/op", allocs)
	}
}
