package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeLines parses a JSONL buffer into generic maps.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestStreamWritesSpansAsTheyEnd(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	r.StreamTo(&buf)

	outer := r.Start("run.script")
	inner := r.Start("vm.call")
	inner.End()

	// The inner span must already be on the wire — this is the whole point
	// of streaming: a crash after this line still has vm.call recorded.
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["name"] != "vm.call" {
		t.Fatalf("after inner End, stream = %v, want just vm.call", lines)
	}

	outer.End()
	r.Count("vm.steps", 42)
	r.Observe("persist.ns", 100)
	if err := r.CloseStream(); err != nil {
		t.Fatalf("CloseStream: %v", err)
	}

	lines = decodeLines(t, &buf)
	var names []string
	for _, m := range lines {
		names = append(names, m["type"].(string)+":"+m["name"].(string))
	}
	got := strings.Join(names, " ")
	want := "span:vm.call span:run.script counter:vm.steps hist:persist.ns"
	if got != want {
		t.Fatalf("stream order = %q, want %q", got, want)
	}
}

func TestStreamEmitsOpenSpansOnClose(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	r.StreamTo(&buf)
	r.Start("never.ended")
	if err := r.CloseStream(); err != nil {
		t.Fatalf("CloseStream: %v", err)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["name"] != "never.ended" || lines[0]["open"] != true {
		t.Fatalf("open span not flushed: %v", lines)
	}
}

// failWriter errors after n bytes to exercise streaming error capture.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	w.n -= len(p)
	return len(p), nil
}

func TestStreamReportsWriteErrors(t *testing.T) {
	r := NewRecorder()
	r.StreamTo(&failWriter{n: 10})
	for i := 0; i < 5; i++ {
		r.Start("s").End()
	}
	if err := r.CloseStream(); err == nil {
		t.Fatal("CloseStream returned nil after write failures")
	}
}

func TestStreamLeavesRecorderUsable(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	r.StreamTo(&buf)
	r.Start("a").End()
	if err := r.CloseStream(); err != nil {
		t.Fatalf("CloseStream: %v", err)
	}
	// Recorder still holds all data: Summary and WriteJSONL keep working.
	if s := r.Summary(); !strings.Contains(s, "a") {
		t.Fatalf("summary lost span after streaming:\n%s", s)
	}
	var again bytes.Buffer
	if err := r.WriteJSONL(&again); err != nil {
		t.Fatalf("WriteJSONL after stream: %v", err)
	}
	if !strings.Contains(again.String(), `"name":"a"`) {
		t.Fatalf("WriteJSONL lost span: %s", again.String())
	}
	// Ending a span with no active stream is a no-op, not a panic.
	r.Start("b").End()
}
