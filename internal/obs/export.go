package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// jsonLine is one exported JSONL record. Type is "span", "counter", "gauge",
// or "hist"; unused fields are omitted.
type jsonLine struct {
	Type string `json:"type"`
	Name string `json:"name"`

	// span fields
	ID        uint64         `json:"id,omitempty"`
	Parent    uint64         `json:"parent,omitempty"`
	StartNS   int64          `json:"start_ns,omitempty"`
	DurNS     int64          `json:"dur_ns,omitempty"`
	StartStep int64          `json:"start_step,omitempty"`
	EndStep   int64          `json:"end_step,omitempty"`
	Open      bool           `json:"open,omitempty"` // never ended
	Attrs     map[string]any `json:"attrs,omitempty"`

	// metric fields
	Value *int64 `json:"value,omitempty"`

	// histogram fields
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
}

// WriteJSONL streams every span (in start order) and then every metric as
// one JSON object per line. Span start_ns is relative to the first span's
// start, so streams from different runs diff cleanly.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	r.mu.Lock()
	spans := snapshotSpans(r.spans)
	counters := sortedNames(r.counters, r.order)
	gauges := sortedNames(r.gauges, r.order)
	var histNames []string
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	sort.Strings(histNames)
	cvals := map[string]int64{}
	for n, v := range r.counters {
		cvals[n] = v
	}
	gvals := map[string]int64{}
	for n, v := range r.gauges {
		gvals[n] = v
	}
	hvals := map[string]*Hist{}
	for n, h := range r.hists {
		cp := *h
		hvals[n] = &cp
	}
	r.mu.Unlock()

	enc := json.NewEncoder(w)
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}
	for _, s := range spans {
		line := jsonLine{
			Type:      "span",
			Name:      s.Name,
			ID:        s.ID,
			Parent:    s.Parent,
			StartNS:   s.Start.Sub(epoch).Nanoseconds(),
			DurNS:     s.Dur.Nanoseconds(),
			StartStep: s.StartStep,
			EndStep:   s.EndStep,
			Open:      !s.Ended,
		}
		if len(s.Attrs) > 0 {
			line.Attrs = map[string]any{}
			for _, a := range s.Attrs {
				line.Attrs[a.Key] = a.Val
			}
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, n := range counters {
		v := cvals[n]
		if err := enc.Encode(jsonLine{Type: "counter", Name: n, Value: &v}); err != nil {
			return err
		}
	}
	for _, n := range gauges {
		v := gvals[n]
		if err := enc.Encode(jsonLine{Type: "gauge", Name: n, Value: &v}); err != nil {
			return err
		}
	}
	for _, n := range histNames {
		h := hvals[n]
		if err := enc.Encode(jsonLine{
			Type: "hist", Name: n,
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max, Mean: h.Mean(),
		}); err != nil {
			return err
		}
	}
	return nil
}

// snapshotSpans deep-copies span records (caller must hold the lock) so
// exports never race with spans still being annotated or ended.
func snapshotSpans(spans []*SpanRecord) []SpanRecord {
	out := make([]SpanRecord, len(spans))
	for i, s := range spans {
		out[i] = *s
		out[i].Attrs = append([]Attr(nil), s.Attrs...)
	}
	return out
}

// sortedNames orders metric names by first-registration order, which groups
// each component's metrics together in the export.
func sortedNames(m map[string]int64, order map[string]int) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i]] < order[out[j]] })
	return out
}

// Summary renders the recorded telemetry as text: the span tree first
// (indentation = nesting), then counters, gauges, and histogram digests.
func (r *Recorder) Summary() string {
	r.mu.Lock()
	spans := snapshotSpans(r.spans)
	counters := sortedNames(r.counters, r.order)
	gauges := sortedNames(r.gauges, r.order)
	var histNames []string
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	sort.Strings(histNames)
	cvals := map[string]int64{}
	for n, v := range r.counters {
		cvals[n] = v
	}
	gvals := map[string]int64{}
	for n, v := range r.gauges {
		gvals[n] = v
	}
	hvals := map[string]*Hist{}
	for n, h := range r.hists {
		cp := *h
		hvals[n] = &cp
	}
	r.mu.Unlock()

	var sb strings.Builder
	if len(spans) > 0 {
		sb.WriteString("spans:\n")
		depth := map[uint64]int{}
		for _, s := range spans {
			d := 0
			if s.Parent != 0 {
				d = depth[s.Parent] + 1
			}
			depth[s.ID] = d
			fmt.Fprintf(&sb, "  %s%s", strings.Repeat("  ", d), s.Name)
			if s.Ended {
				fmt.Fprintf(&sb, " %v", s.Dur.Round(time.Microsecond))
				if steps := s.EndStep - s.StartStep; steps > 0 {
					fmt.Fprintf(&sb, " (%d steps)", steps)
				}
			} else {
				sb.WriteString(" [open]")
			}
			for _, a := range s.Attrs {
				fmt.Fprintf(&sb, " %s=%v", a.Key, a.Val)
			}
			sb.WriteString("\n")
		}
	}
	if len(counters) > 0 {
		sb.WriteString("counters:\n")
		for _, n := range counters {
			fmt.Fprintf(&sb, "  %-32s %d\n", n, cvals[n])
		}
	}
	if len(gauges) > 0 {
		sb.WriteString("gauges:\n")
		for _, n := range gauges {
			fmt.Fprintf(&sb, "  %-32s %d\n", n, gvals[n])
		}
	}
	if len(histNames) > 0 {
		sb.WriteString("histograms:\n")
		for _, n := range histNames {
			h := hvals[n]
			fmt.Fprintf(&sb, "  %-32s n=%d min=%.0f mean=%.1f max=%.0f\n",
				n, h.Count, h.Min, h.Mean(), h.Max)
		}
	}
	return sb.String()
}
