package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// jsonLine is one exported JSONL record. Type is "span", "counter", "gauge",
// or "hist"; unused fields are omitted.
type jsonLine struct {
	Type string `json:"type"`
	Name string `json:"name"`

	// span fields
	ID        uint64         `json:"id,omitempty"`
	Parent    uint64         `json:"parent,omitempty"`
	StartNS   int64          `json:"start_ns,omitempty"`
	DurNS     int64          `json:"dur_ns,omitempty"`
	StartStep int64          `json:"start_step,omitempty"`
	EndStep   int64          `json:"end_step,omitempty"`
	Open      bool           `json:"open,omitempty"` // never ended
	Attrs     map[string]any `json:"attrs,omitempty"`

	// metric fields
	Value *int64 `json:"value,omitempty"`

	// histogram fields
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// spanJSONLine renders one span record relative to epoch.
func spanJSONLine(s SpanRecord, epoch time.Time) jsonLine {
	line := jsonLine{
		Type:      "span",
		Name:      s.Name,
		ID:        s.ID,
		Parent:    s.Parent,
		StartNS:   s.Start.Sub(epoch).Nanoseconds(),
		DurNS:     s.Dur.Nanoseconds(),
		StartStep: s.StartStep,
		EndStep:   s.EndStep,
		Open:      !s.Ended,
	}
	if len(s.Attrs) > 0 {
		line.Attrs = map[string]any{}
		for _, a := range s.Attrs {
			line.Attrs[a.Key] = a.Val
		}
	}
	return line
}

// metricsSnapshot captures every metric for export. Caller holds the lock.
type metricsSnapshot struct {
	counters, gauges, histNames []string
	cvals, gvals                map[string]int64
	hvals                       map[string]*Hist
}

func (r *Recorder) metricsSnapshotLocked() metricsSnapshot {
	snap := metricsSnapshot{
		counters: sortedNames(r.counters, r.order),
		gauges:   sortedNames(r.gauges, r.order),
		cvals:    map[string]int64{},
		gvals:    map[string]int64{},
		hvals:    map[string]*Hist{},
	}
	for n := range r.hists {
		snap.histNames = append(snap.histNames, n)
	}
	sort.Strings(snap.histNames)
	for n, v := range r.counters {
		snap.cvals[n] = v
	}
	for n, v := range r.gauges {
		snap.gvals[n] = v
	}
	for n, h := range r.hists {
		cp := *h
		snap.hvals[n] = &cp
	}
	return snap
}

// encodeMetrics writes the counter/gauge/hist lines of a snapshot.
func encodeMetrics(enc *json.Encoder, snap metricsSnapshot) error {
	for _, n := range snap.counters {
		v := snap.cvals[n]
		if err := enc.Encode(jsonLine{Type: "counter", Name: n, Value: &v}); err != nil {
			return err
		}
	}
	for _, n := range snap.gauges {
		v := snap.gvals[n]
		if err := enc.Encode(jsonLine{Type: "gauge", Name: n, Value: &v}); err != nil {
			return err
		}
	}
	for _, n := range snap.histNames {
		h := snap.hvals[n]
		if err := enc.Encode(jsonLine{
			Type: "hist", Name: n,
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max, Mean: h.Mean(),
			P50: h.Quantile(0.5), P99: h.Quantile(0.99),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL streams every span (in start order) and then every metric as
// one JSON object per line. Span start_ns is relative to the first span's
// start, so streams from different runs diff cleanly.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	r.mu.Lock()
	spans := snapshotSpans(r.spans)
	snap := r.metricsSnapshotLocked()
	r.mu.Unlock()

	enc := json.NewEncoder(w)
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}
	for _, s := range spans {
		if err := enc.Encode(spanJSONLine(s, epoch)); err != nil {
			return err
		}
	}
	return encodeMetrics(enc, snap)
}

// StreamTo switches the recorder into streaming mode: from now on every
// span is written to w as a JSONL line the moment it ends, so a process
// that panics or exits mid-run keeps the telemetry recorded up to that
// point (only spans still open at the crash are lost). Metrics aggregate
// as usual and are appended by CloseStream. Writes happen under the
// recorder lock; w must not call back into the recorder.
func (r *Recorder) StreamTo(w io.Writer) {
	r.mu.Lock()
	r.stream = json.NewEncoder(w)
	r.streamErr = nil
	r.epochSet = false
	r.mu.Unlock()
}

// streamSpanLocked emits one ended span. Caller holds the lock.
func (r *Recorder) streamSpanLocked(rec *SpanRecord) {
	if r.stream == nil || r.streamErr != nil {
		return
	}
	if !r.epochSet {
		r.streamEpoch = rec.Start
		r.epochSet = true
	}
	cp := *rec
	cp.Attrs = append([]Attr(nil), rec.Attrs...)
	if err := r.stream.Encode(spanJSONLine(cp, r.streamEpoch)); err != nil {
		r.streamErr = err
	}
}

// CloseStream finishes streaming mode: spans still open are written with
// "open":true, the final counter/gauge/histogram values follow, and the
// first write error encountered during streaming (if any) is returned.
// The recorder keeps its data and can still WriteJSONL/Summary afterwards.
func (r *Recorder) CloseStream() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := r.stream
	err := r.streamErr
	r.stream = nil
	r.streamErr = nil
	if enc == nil || err != nil {
		return err
	}
	epoch := r.streamEpoch
	for _, s := range r.spans {
		if s.Ended {
			continue
		}
		if !r.epochSet {
			epoch = s.Start
			r.epochSet = true
			r.streamEpoch = epoch
		}
		cp := *s
		cp.Attrs = append([]Attr(nil), s.Attrs...)
		if err := enc.Encode(spanJSONLine(cp, epoch)); err != nil {
			return err
		}
	}
	return encodeMetrics(enc, r.metricsSnapshotLocked())
}

// snapshotSpans deep-copies span records (caller must hold the lock) so
// exports never race with spans still being annotated or ended.
func snapshotSpans(spans []*SpanRecord) []SpanRecord {
	out := make([]SpanRecord, len(spans))
	for i, s := range spans {
		out[i] = *s
		out[i].Attrs = append([]Attr(nil), s.Attrs...)
	}
	return out
}

// sortedNames orders metric names by first-registration order, which groups
// each component's metrics together in the export.
func sortedNames(m map[string]int64, order map[string]int) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return order[out[i]] < order[out[j]] })
	return out
}

// Summary renders the recorded telemetry as text: the span tree first
// (indentation = nesting), then counters, gauges, and histogram digests.
func (r *Recorder) Summary() string {
	r.mu.Lock()
	spans := snapshotSpans(r.spans)
	counters := sortedNames(r.counters, r.order)
	gauges := sortedNames(r.gauges, r.order)
	var histNames []string
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	sort.Strings(histNames)
	cvals := map[string]int64{}
	for n, v := range r.counters {
		cvals[n] = v
	}
	gvals := map[string]int64{}
	for n, v := range r.gauges {
		gvals[n] = v
	}
	hvals := map[string]*Hist{}
	for n, h := range r.hists {
		cp := *h
		hvals[n] = &cp
	}
	r.mu.Unlock()

	var sb strings.Builder
	if len(spans) > 0 {
		sb.WriteString("spans:\n")
		depth := map[uint64]int{}
		for _, s := range spans {
			d := 0
			if s.Parent != 0 {
				d = depth[s.Parent] + 1
			}
			depth[s.ID] = d
			fmt.Fprintf(&sb, "  %s%s", strings.Repeat("  ", d), s.Name)
			if s.Ended {
				fmt.Fprintf(&sb, " %v", s.Dur.Round(time.Microsecond))
				if steps := s.EndStep - s.StartStep; steps > 0 {
					fmt.Fprintf(&sb, " (%d steps)", steps)
				}
			} else {
				sb.WriteString(" [open]")
			}
			for _, a := range s.Attrs {
				fmt.Fprintf(&sb, " %s=%v", a.Key, a.Val)
			}
			sb.WriteString("\n")
		}
	}
	if len(counters) > 0 {
		sb.WriteString("counters:\n")
		for _, n := range counters {
			fmt.Fprintf(&sb, "  %-32s %d\n", n, cvals[n])
		}
	}
	if len(gauges) > 0 {
		sb.WriteString("gauges:\n")
		for _, n := range gauges {
			fmt.Fprintf(&sb, "  %-32s %d\n", n, gvals[n])
		}
	}
	if len(histNames) > 0 {
		sb.WriteString("histograms:\n")
		for _, n := range histNames {
			h := hvals[n]
			fmt.Fprintf(&sb, "  %-32s n=%d min=%.0f mean=%.1f p50=%.0f p99=%.0f max=%.0f\n",
				n, h.Count, h.Min, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max)
		}
	}
	return sb.String()
}
