// Package obs is the pipeline-wide observability layer: counters, gauges,
// histograms, and hierarchical trace spans for every stage of the Arthas
// toolchain (analyze → instrument → run → detect → react, paper Figure 4).
//
// Every instrumented component (pmem pool, checkpoint log, VM, tracer,
// detector, reactor, baselines) holds a Sink. The default sink is a no-op
// whose methods compile to nothing, and hot paths additionally guard their
// instrumentation behind a cached "enabled" bool, so a system deployed
// without observability pays no measurable cost (see the overhead
// benchmarks). Installing a Recorder turns the same call sites into live
// telemetry: a JSONL span/metric stream (WriteJSONL) and a human-readable
// summary (Summary).
//
// Naming scheme (see docs/OBSERVABILITY.md for the full registry):
//
//   - metrics are dot-separated "<component>.<what>", e.g. pmem.store,
//     ckpt.versions, vm.instructions, trace.flushes, detector.hard
//   - histograms carry their unit as the last segment: ckpt.hook.ns
//     (wall-clock nanoseconds), reactor.revert.versions (logical counts)
//   - spans are "<component>.<phase>": pipeline.run, pipeline.detect,
//     reactor.plan, reactor.revert, reactor.reexec
package obs

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val any
}

// A builds an Attr (shorthand for call sites).
func A(key string, val any) Attr { return Attr{Key: key, Val: val} }

// Span is one timed, attributed region of pipeline work. Spans nest: a span
// started while another is active becomes its child.
type Span interface {
	// SetAttr annotates the span (outcomes discovered after Start).
	SetAttr(key string, val any)
	// End closes the span, stamping wall-clock and logical end times.
	End()
}

// Sink receives telemetry events. All methods must be safe to call with a
// zero value of their arguments; implementations must be concurrency-safe.
type Sink interface {
	// Enabled reports whether events are recorded. Hot paths cache this
	// (or branch on it) and skip event construction entirely when false.
	Enabled() bool
	// Count adds delta to a named monotonic counter.
	Count(name string, delta int64)
	// SetGauge sets a named point-in-time value.
	SetGauge(name string, v int64)
	// Observe adds one sample to a named histogram. The unit (wall-clock
	// nanoseconds, logical steps, plain counts) is part of the name.
	Observe(name string, v float64)
	// Start opens a span as a child of the innermost active span.
	Start(name string, attrs ...Attr) Span
}

// nopSink is the zero-cost default sink.
type nopSink struct{}

// nopSpan is the shared no-op span.
type nopSpan struct{}

func (nopSpan) SetAttr(string, any) {}
func (nopSpan) End()                {}

func (nopSink) Enabled() bool              { return false }
func (nopSink) Count(string, int64)        {}
func (nopSink) SetGauge(string, int64)     {}
func (nopSink) Observe(string, float64)    {}
func (nopSink) Start(string, ...Attr) Span { return nopSpan{} }

var nop Sink = nopSink{}

// Nop returns the shared no-op sink.
func Nop() Sink { return nop }

// OrNop maps a nil sink to the no-op sink, so components can store a Sink
// field that is always safe to call.
func OrNop(s Sink) Sink {
	if s == nil {
		return nop
	}
	return s
}

// Enabled reports whether s records events (false for nil and the no-op).
func Enabled(s Sink) bool { return s != nil && s.Enabled() }

// Clockable is implemented by sinks that stamp spans with logical time
// (the Recorder). WireClock uses it to reach through Multi composition.
type Clockable interface {
	SetClock(func() int64)
}

// WireClock installs a logical clock on every member of s that supports one
// (descending through Multi). Sinks without a clock are unaffected.
func WireClock(s Sink, clock func() int64) {
	switch v := s.(type) {
	case multi:
		for _, member := range v.sinks {
			WireClock(member, clock)
		}
	case Clockable:
		v.SetClock(clock)
	}
}

// multi fans events out to several sinks.
type multi struct{ sinks []Sink }

type multiSpan struct{ spans []Span }

func (m multiSpan) SetAttr(k string, v any) {
	for _, s := range m.spans {
		s.SetAttr(k, v)
	}
}

func (m multiSpan) End() {
	for _, s := range m.spans {
		s.End()
	}
}

func (m multi) Enabled() bool { return true }

func (m multi) Count(name string, delta int64) {
	for _, s := range m.sinks {
		s.Count(name, delta)
	}
}

func (m multi) SetGauge(name string, v int64) {
	for _, s := range m.sinks {
		s.SetGauge(name, v)
	}
}

func (m multi) Observe(name string, v float64) {
	for _, s := range m.sinks {
		s.Observe(name, v)
	}
}

func (m multi) Start(name string, attrs ...Attr) Span {
	ms := multiSpan{spans: make([]Span, len(m.sinks))}
	for i, s := range m.sinks {
		ms.spans[i] = s.Start(name, attrs...)
	}
	return ms
}

// Multi combines sinks, dropping nil and no-op members. It returns the
// no-op sink when nothing remains and the sink itself when one remains.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if Enabled(s) {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nop
	case 1:
		return live[0]
	}
	return multi{sinks: live}
}
