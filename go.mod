module arthas

go 1.22
