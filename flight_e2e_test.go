package arthas

import (
	"bytes"
	"testing"

	"arthas/internal/obs"
)

// TestFlightSurvivesTrapIntoImage is the flight recorder's end-to-end
// contract: a run that hits a hard fault and saves its image carries the
// last-N-events tail inside the image, and post-mortem inspection of that
// image (the arthas-inspect flight path: ReadAnyImage → Pool.Flight) sees
// exactly what the live recorder held at save time.
func TestFlightSurvivesTrapIntoImage(t *testing.T) {
	rec := obs.NewRecorder()
	inst, err := New("demo", demoSource, Config{
		RecoverFn:    "recover_",
		Observer:     rec,
		FlightEvents: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Flight == nil {
		t.Fatal("FlightEvents > 0 but Instance.Flight is nil")
	}
	inst.Call("init_")
	for i := int64(0); i < 8; i++ {
		inst.Call("put", i, 100+i)
	}
	inst.Call("corrupt", 5) // persist a corrupt pointer: the hard fault
	if _, trap := inst.Call("get", 0); trap == nil {
		t.Fatal("expected a trap after corruption")
	}

	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	live := inst.Flight.Events() // what the live ring held at save time

	pool, log, tr, err := ReadAnyImage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if log == nil || tr == nil {
		t.Fatal("full image lost checkpoint log or trace")
	}
	fl := pool.Flight()
	if fl == nil {
		t.Fatal("recovered pool has no flight recorder")
	}
	recovered := fl.Events()
	if len(recovered) == 0 {
		t.Fatal("recovered flight tail is empty")
	}
	// SaveImage itself emits a handful of events AFTER the pool section is
	// written (checkpoint-log and trace serialization report through the
	// sink), so the live ring is a few events ahead of the serialized tail.
	// Match on the seq-number overlap: every recovered event that is still
	// in the live ring must be identical, and nearly all must overlap.
	liveBySeq := map[uint64]obs.FlightEvent{}
	for _, e := range live {
		liveBySeq[e.Seq] = e
	}
	common := 0
	for _, r := range recovered {
		l, ok := liveBySeq[r.Seq]
		if !ok {
			continue
		}
		common++
		if l.Kind != r.Kind || l.Name != r.Name || l.Value != r.Value ||
			l.Span != r.Span || l.Step != r.Step ||
			obs.RenderVal(l.Val) != obs.RenderVal(r.Val) {
			t.Fatalf("seq %d mismatch:\nlive      %+v\nrecovered %+v", r.Seq, l, r)
		}
	}
	if common < len(recovered)-8 {
		t.Fatalf("only %d of %d recovered events overlap the live ring", common, len(recovered))
	}

	// The tail must be a usable post-mortem record: request spans AND the
	// low-level persistence activity leading up to the fault.
	sawSpan, sawStore, sawCorrupt := false, false, false
	for _, e := range recovered {
		if e.Kind == obs.FlightBegin && e.Name == "vm.call" {
			sawSpan = true
		}
		if e.Kind == obs.FlightCount && e.Name == "pmem.store" {
			sawStore = true
		}
		if e.Kind == obs.FlightAttr && obs.RenderVal(e.Val) == "corrupt" {
			sawCorrupt = true
		}
	}
	if !sawSpan || !sawStore || !sawCorrupt {
		t.Fatalf("tail not forensic-grade: span=%v store=%v corrupt-call=%v",
			sawSpan, sawStore, sawCorrupt)
	}

	// Cross-check against the Recorder: every span the flight tail names
	// was also seen by the full recorder (same telemetry stream, two sinks).
	names := map[string]bool{}
	for _, n := range rec.SpanNames() {
		names[n] = true
	}
	for _, e := range recovered {
		if e.Kind == obs.FlightBegin && !names[e.Name] {
			t.Fatalf("flight span %q unknown to the recorder", e.Name)
		}
	}
}

// TestFlightContinuesAcrossReopen: reopening an image resumes the SAME
// ring — sequence numbers keep climbing, so a post-mortem after several
// restarts still reads as one continuous timeline.
func TestFlightContinuesAcrossReopen(t *testing.T) {
	inst, err := New("demo", demoSource, Config{RecoverFn: "recover_", FlightEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	inst.Call("init_")
	inst.Call("put", int64(1), int64(42))
	before := inst.Flight.TotalEvents()
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}

	inst2, err := OpenImage("demo", demoSource, Config{RecoverFn: "recover_"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.Flight == nil {
		t.Fatal("reopened instance lost its flight recorder")
	}
	// The serialized ring holds at least everything recorded before the
	// save (SaveImage may add a few of its own events before the pool
	// section is cut).
	if got := inst2.Flight.TotalEvents(); got < before {
		t.Fatalf("reopen lost events: %d < %d recorded pre-save", got, before)
	}
	inst2.Call("get", int64(1))
	after := inst2.Flight.TotalEvents()
	if after <= before {
		t.Fatalf("reopened flight not recording: %d -> %d", before, after)
	}
	evs := inst2.Flight.Events()
	last := evs[len(evs)-1]
	if last.Seq != after {
		t.Fatalf("sequence numbering broke across reopen: last seq %d, total %d", last.Seq, after)
	}
}

// TestFlightSurvivesCrash: Pool.Crash (the simulated power failure) wipes
// unpersisted data but NOT the flight recorder — that is the point of a
// flight recorder.
func TestFlightSurvivesCrash(t *testing.T) {
	inst, err := New("demo", demoSource, Config{RecoverFn: "recover_", FlightEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	inst.Call("init_")
	pre := inst.Flight.TotalEvents()
	if pre == 0 {
		t.Fatal("no events before crash")
	}
	if trap := inst.Restart(); trap != nil { // Crash + recovery
		t.Fatal(trap)
	}
	if post := inst.Flight.TotalEvents(); post < pre {
		t.Fatalf("crash lost flight events: %d -> %d", pre, post)
	}
	// The crash itself must be on the record.
	sawCrash := false
	for _, e := range inst.Flight.Events() {
		if e.Name == "pmem.crash" {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("pmem.crash not recorded in flight tail")
	}
}
