package arthas

import (
	"fmt"
	"strconv"
	"strings"
)

// RunScript executes a semicolon-separated request script against an
// instance and returns one result line per statement. It is the engine
// behind cmd/arthas-run and convenient for demos and tests:
//
//	lines, _ := inst.RunScript("init_; put 1 42; get 1; restart; get 1; stats")
//
// Statements are function calls with integer arguments, plus the pseudo-ops
// "restart" (crash + restart + recovery), "stats", and "mitigate FN ARGS"
// (run the reactor against the last observed trap, using restart + FN as
// the re-execution script). Traps do not abort the script; they are
// reported (and fed to the detector) so scripts can demonstrate recurring
// failures.
func (i *Instance) RunScript(script string) ([]string, error) {
	var out []string
	for _, stmt := range strings.Split(script, ";") {
		fields := strings.Fields(stmt)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "restart":
			if trap := i.Restart(); trap != nil {
				out = append(out, fmt.Sprintf("restart -> %v", trap))
			} else {
				out = append(out, "restart -> ok")
			}
			continue
		case "stats":
			out = append(out, i.Stats())
			continue
		case "mitigate":
			if len(fields) < 2 {
				return out, fmt.Errorf("mitigate needs a re-execution call: mitigate FN ARGS")
			}
			args, err := parseArgs(fields[2:], stmt)
			if err != nil {
				return out, err
			}
			// The recipe form enables the parallel speculative search
			// when the instance was configured with Reactor.Workers > 1.
			rep, err := i.MitigateCall(fields[1], args...)
			if err != nil {
				return out, err
			}
			out = append(out, fmt.Sprintf("mitigate -> %v", rep))
			continue
		}
		args, err := parseArgs(fields[1:], stmt)
		if err != nil {
			return out, err
		}
		v, trap := i.Call(fields[0], args...)
		if trap != nil {
			_, hard := i.Observe(trap)
			out = append(out, fmt.Sprintf("%s -> TRAP %v (hard=%v)", strings.TrimSpace(stmt), trap, hard))
			continue
		}
		out = append(out, fmt.Sprintf("%s -> %d", strings.TrimSpace(stmt), v))
	}
	return out, nil
}

func parseArgs(fields []string, stmt string) ([]int64, error) {
	args := make([]int64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad argument %q in %q", f, strings.TrimSpace(stmt))
		}
		args = append(args, v)
	}
	return args, nil
}
