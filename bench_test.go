// Package arthas_test: external test package so these benchmarks can pull
// in internal/experiments, which (via the fleet experiment) itself links
// against the root arthas facade — in-package tests would form an import
// cycle.
package arthas_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment and reports the headline quantities through
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the entire
// evaluation (see EXPERIMENTS.md for the paper-vs-measured record).
//
// The recoverability matrix (Tables 3-5, Figures 8/9/11) is computed once
// and shared across its benchmarks: the matrix IS the experiment; the
// per-bench work is extracting and rendering each artifact.

import (
	"sync"
	"testing"

	"arthas/internal/experiments"
	"arthas/internal/faults"
	"arthas/internal/study"
)

var (
	matrixOnce sync.Once
	matrixVal  *experiments.Matrix
	matrixErr  error
)

func sharedMatrix(b *testing.B) *experiments.Matrix {
	b.Helper()
	matrixOnce.Do(func() {
		matrixVal, matrixErr = experiments.RunMatrix(experiments.MatrixConfig{Seeds: 10})
	})
	if matrixErr != nil {
		b.Fatal(matrixErr)
	}
	return matrixVal
}

// --- Empirical study (paper §2) ---

func BenchmarkTable1Study(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(study.BySystem()) == 0 {
			b.Fatal("empty study")
		}
	}
	b.ReportMetric(float64(len(study.Dataset())), "bugs")
}

func BenchmarkFig2RootCauses(b *testing.B) {
	var logicPct float64
	for i := 0; i < b.N; i++ {
		for _, c := range study.ByRootCause() {
			if c.Label == "Logic Error" {
				logicPct = c.Pct
			}
		}
	}
	b.ReportMetric(logicPct, "logic-error-pct")
}

func BenchmarkFig3Consequences(b *testing.B) {
	var crashPct float64
	for i := 0; i < b.N; i++ {
		for _, c := range study.ByConsequence() {
			if c.Label == "Repeated Crash" {
				crashPct = c.Pct
			}
		}
	}
	b.ReportMetric(crashPct, "repeated-crash-pct")
}

// --- Fault dataset (paper Table 2) ---

func BenchmarkTable2Faults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(faults.All()) != 12 {
			b.Fatal("fault registry broken")
		}
	}
}

// --- Recoverability matrix (paper §6.2-§6.4) ---

func BenchmarkTable3Recoverability(b *testing.B) {
	m := sharedMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Table3()
	}
	arthasWins, criuWins, arckptWins := 0, 0, 0
	for _, c := range m.Cases {
		if c.Arthas.Recovered {
			arthasWins++
		}
		if ok, total := c.PmCRIUSuccesses(); ok == total && ok > 0 {
			criuWins++
		}
		if c.ArCkpt.Recovered {
			arckptWins++
		}
	}
	b.ReportMetric(float64(arthasWins), "arthas-recovered")
	b.ReportMetric(float64(criuWins), "pmcriu-deterministic")
	b.ReportMetric(float64(arckptWins), "arckpt-recovered")
}

func BenchmarkTable4Consistency(b *testing.B) {
	m := sharedMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Table4()
	}
	consistent := 0
	for _, c := range m.Cases {
		if c.ArthasRollback.Recovered && c.ArthasRollback.Consistent == nil {
			consistent++
		}
	}
	b.ReportMetric(float64(consistent), "rollback-consistent")
}

func BenchmarkTable5Attempts(b *testing.B) {
	m := sharedMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Table5()
	}
	var attempts []int
	for _, c := range m.Cases {
		attempts = append(attempts, c.Arthas.Attempts)
	}
	b.ReportMetric(float64(median(attempts)), "arthas-median-attempts")
}

func BenchmarkFig8MitigationTime(b *testing.B) {
	m := sharedMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Fig8()
	}
	var sum float64
	for _, c := range m.Cases {
		sum += float64(c.Arthas.MitigationTime.Microseconds()) / 1000
	}
	b.ReportMetric(sum/float64(len(m.Cases)), "arthas-mean-ms")
}

func BenchmarkFig9DataLoss(b *testing.B) {
	m := sharedMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Fig9()
	}
	var aSum, pSum float64
	var n int
	for _, c := range m.Cases {
		for _, o := range c.PmCRIU {
			if o.Recovered {
				aSum += c.Arthas.DataLossPct
				pSum += o.DataLossPct
				n++
				break
			}
		}
	}
	if n > 0 {
		b.ReportMetric(aSum/float64(n), "arthas-loss-pct")
		b.ReportMetric(pSum/float64(n), "pmcriu-loss-pct")
	}
}

func BenchmarkFig11PurgeVsRollback(b *testing.B) {
	m := sharedMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Fig11()
	}
	var pg, rb float64
	var n int
	for _, c := range m.Cases {
		if c.Meta.IsLeak {
			continue
		}
		pg += c.Arthas.DataLossPct
		rb += c.ArthasRollback.DataLossPct
		n++
	}
	b.ReportMetric(pg/float64(n), "purge-loss-pct")
	b.ReportMetric(rb/float64(n), "rollback-loss-pct")
}

// --- Reversion strategies (paper §6.5) ---

var (
	batchOnce sync.Once
	batchVal  *experiments.BatchResults
	batchErr  error
)

func sharedBatch(b *testing.B) *experiments.BatchResults {
	b.Helper()
	batchOnce.Do(func() {
		batchVal, batchErr = experiments.RunBatchComparison(faults.RunConfig{})
	})
	if batchErr != nil {
		b.Fatal(batchErr)
	}
	return batchVal
}

func BenchmarkFig10BatchTime(b *testing.B) {
	br := sharedBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = br.Fig10()
	}
	var one, five float64
	for i := range br.OneByOne {
		one += float64(br.OneByOne[i].Attempts)
		five += float64(br.Batch5[i].Attempts)
	}
	b.ReportMetric(one, "one-by-one-attempts")
	b.ReportMetric(five, "batch5-attempts")
}

func BenchmarkTable6BatchDiscards(b *testing.B) {
	br := sharedBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = br.Table6()
	}
	var one, five int
	for i := range br.OneByOne {
		one += br.OneByOne[i].Reverted
		five += br.Batch5[i].Reverted
	}
	b.ReportMetric(float64(one), "one-by-one-items")
	b.ReportMetric(float64(five), "batch5-items")
}

// --- Detection alternatives (paper §6.6, Table 7) ---

func BenchmarkTable7Detection(b *testing.B) {
	detected := 0
	for i := 0; i < b.N; i++ {
		detected = 0
		for _, bd := range faults.All() {
			inv, _, err := faults.RunDetectionAlternatives(bd, faults.RunConfig{})
			if err != nil {
				b.Fatal(err)
			}
			if inv {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "invariant-detected")
}

// --- Runtime overhead (paper §6.7) ---

var (
	overheadOnce sync.Once
	overheadVal  *experiments.OverheadResults
	overheadErr  error
)

func sharedOverhead(b *testing.B) *experiments.OverheadResults {
	b.Helper()
	overheadOnce.Do(func() {
		overheadVal, overheadErr = experiments.MeasureOverhead(
			experiments.OverheadConfig{YCSBOps: 30_000, InsertOps: 30_000},
			[]experiments.Variant{
				experiments.Vanilla, experiments.WithArthas,
				experiments.WithCheckpoint, experiments.WithInstr,
				experiments.WithPmCRIU,
			})
	})
	if overheadErr != nil {
		b.Fatal(overheadErr)
	}
	return overheadVal
}

func BenchmarkFig12Overhead(b *testing.B) {
	res := sharedOverhead(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Fig12()
	}
	var rel float64
	for _, sys := range experiments.OverheadSystems {
		rel += res.Relative(sys, experiments.WithArthas)
	}
	b.ReportMetric(rel/float64(len(experiments.OverheadSystems)), "arthas-rel-throughput")
}

func BenchmarkTable8OverheadSplit(b *testing.B) {
	res := sharedOverhead(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Table8()
	}
	var ck, in float64
	for _, sys := range experiments.OverheadSystems {
		ck += res.Relative(sys, experiments.WithCheckpoint)
		in += res.Relative(sys, experiments.WithInstr)
	}
	n := float64(len(experiments.OverheadSystems))
	b.ReportMetric(ck/n, "checkpoint-rel")
	b.ReportMetric(in/n, "instr-rel")
}

// --- Static analysis (paper §6.8, Table 9) ---

func BenchmarkTable9StaticAnalysis(b *testing.B) {
	var ts []experiments.StaticTiming
	var err error
	for i := 0; i < b.N; i++ {
		ts, err = experiments.MeasureStatic()
		if err != nil {
			b.Fatal(err)
		}
	}
	var analysisUS, sliceUS float64
	for _, t := range ts {
		analysisUS += float64(t.Analysis.Microseconds())
		sliceUS += float64(t.Slicing.Microseconds())
	}
	b.ReportMetric(analysisUS/float64(len(ts)), "mean-analysis-us")
	b.ReportMetric(sliceUS/float64(len(ts)), "mean-slice-us")
}

func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
