package arthas

import (
	"bytes"
	"testing"

	"arthas/internal/pmem"
)

// End-to-end media-fault resilience: inject corruption behind the checksums'
// back, and verify the system heals it — via the open path (scrub from the
// image's own checkpoint log), via the in-process reactor (scrub-then-retry),
// and, when the log cannot prove a block's contents, via quarantine so the
// pool opens degraded rather than failing.

// bufPayloadAddr returns the address of buf[i] in a demo instance.
func bufPayloadAddr(t *testing.T, inst *Instance, i uint64) uint64 {
	t.Helper()
	root, err := inst.Pool.Root(0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := inst.Pool.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	return buf + i
}

func TestMediaFaultHealsOnOpenImage(t *testing.T) {
	inst := newDemo(t)
	for i := int64(0); i < 8; i++ {
		if _, trap := inst.Call("put", i, 300+i); trap != nil {
			t.Fatal(trap)
		}
	}
	// Flip a bit of a durable payload word AFTER write-back: the stored
	// checksum no longer matches the block contents.
	addr := bufPayloadAddr(t, inst, 3)
	if err := inst.InjectMediaFault(MediaFault{Kind: MediaBitFlip, Addr: addr, Bits: 1 << 7}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}

	inst2, err := OpenImage("demo", demoSource, Config{RecoverFn: "recover_"}, &buf)
	if err != nil {
		t.Fatalf("OpenImage did not heal the media fault: %v", err)
	}
	if inst2.LastScrub == nil {
		t.Fatal("no scrub report despite corrupt image")
	}
	if inst2.LastScrub.Healed < 1 || inst2.LastScrub.RepairedWords < 1 {
		t.Fatalf("scrub report = %s", inst2.LastScrub)
	}
	if merr := inst2.Pool.VerifyMedia(); merr != nil {
		t.Fatalf("pool still corrupt after heal: %v", merr)
	}
	// The original contents were provably restored from the checkpoint log:
	// the workload sees the pre-fault values.
	for i := int64(0); i < 8; i++ {
		v, trap := inst2.Call("get", i)
		if trap != nil || v != 300+i {
			t.Fatalf("get(%d) = %d (%v) after heal", i, v, trap)
		}
	}
}

func TestMediaFaultCleanImageHasNoScrub(t *testing.T) {
	inst := newDemo(t)
	inst.Call("put", 0, 42)
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	inst2, err := OpenImage("demo", demoSource, Config{RecoverFn: "recover_"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.LastScrub != nil {
		t.Fatalf("clean image produced a scrub report: %s", inst2.LastScrub)
	}
}

func TestMediaFaultHealsInProcess(t *testing.T) {
	inst := newDemo(t)
	for i := int64(0); i < 8; i++ {
		if _, trap := inst.Call("put", i, 500+i); trap != nil {
			t.Fatal(trap)
		}
	}
	addr := bufPayloadAddr(t, inst, 2)
	if err := inst.InjectMediaFault(MediaFault{Kind: MediaStuckWord, Addr: addr, Bits: 0xFF}); err != nil {
		t.Fatal(err)
	}
	// The next read from the poisoned block traps media-corrupt.
	_, trap := inst.Call("get", 2)
	if trap == nil || trap.Kind != TrapMediaCorrupt {
		t.Fatalf("trap = %v, want media-corrupt", trap)
	}
	if !inst.MediaSuspected() {
		t.Fatal("detector did not flag media corruption")
	}
	inst.Observe(trap)
	rep, err := inst.MitigateCall("get", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatalf("mitigation failed: %s", rep)
	}
	if rep.ScrubRepairs < 1 {
		t.Fatalf("recovered without scrubbing (ScrubRepairs=%d): %s", rep.ScrubRepairs, rep)
	}
	// Scrub retries are not charged as mitigation attempts: the budget the
	// paper allots to reversion rounds is untouched by media healing.
	if rep.Attempts > 2 {
		t.Fatalf("scrub retries inflated the attempt count: %d attempts", rep.Attempts)
	}
	if merr := inst.Pool.VerifyMedia(); merr != nil {
		t.Fatalf("pool still corrupt after mitigation: %v", merr)
	}
	for i := int64(0); i < 8; i++ {
		v, trap := inst.Call("get", i)
		if trap != nil || v != 500+i {
			t.Fatalf("get(%d) = %d (%v) after heal", i, v, trap)
		}
	}
}

// bigSource allocates a 200-word buffer so its payload spans media blocks
// beyond block 0 — poisoning one of those with no checkpoint log available
// exercises the quarantine path rather than the header-degrade path.
const bigSource = `
fn init_() {
    var root = pmalloc(4);
    var big = pmalloc(200);
    root[0] = big;
    root[1] = 200;
    persist(root, 2);
    setroot(0, root);
    return 0;
}
fn fill(i, v) {
    var root = getroot(0);
    var big = root[0];
    big[i % 200] = v;
    persist(big + (i % 200), 1);
    return 0;
}
fn grab() {
    var p = pmalloc(40);
    p[0] = 1;
    persist(p, 1);
    return p;
}
fn recover_() {
    recover_begin();
    var root = getroot(0);
    var n = root[1];
    recover_end();
    return n;
}
`

func TestMediaUnrepairableQuarantinesOnOpen(t *testing.T) {
	inst, err := New("big", bigSource, Config{PoolWords: 4096, RecoverFn: "recover_"})
	if err != nil {
		t.Fatal(err)
	}
	if _, trap := inst.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	for i := int64(0); i < 200; i++ {
		inst.Call("fill", i, 900+i)
	}
	// Poison a whole media block in the middle of big's payload, then save a
	// bare pool file: Open has no checkpoint log to reconstruct from, so the
	// block is unreconstructible and must be fenced off, not fatal.
	root, _ := inst.Pool.Root(0)
	big, _ := inst.Pool.Load(root)
	target := big + 150 // well past block 0
	if pmem.MediaBlockOf(target) == 0 {
		t.Fatalf("target %#x unexpectedly in block 0", target)
	}
	if err := inst.InjectMediaFault(MediaFault{Kind: MediaBlockPoison, Addr: target, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := inst.SavePool(&buf); err != nil {
		t.Fatal(err)
	}

	inst2, err := Open("big", bigSource, Config{PoolWords: 4096, RecoverFn: "recover_"}, &buf)
	if err != nil {
		t.Fatalf("pool with unrepairable block failed to open: %v", err)
	}
	if inst2.LastScrub == nil || inst2.LastScrub.Quarantined < 1 {
		t.Fatalf("scrub report = %v, want >=1 quarantined", inst2.LastScrub)
	}
	qb := inst2.Pool.QuarantinedBlocks()
	if len(qb) == 0 {
		t.Fatal("no blocks quarantined")
	}
	// The pool serves: new allocations succeed and never land inside a
	// quarantined block.
	for n := 0; n < 8; n++ {
		p, trap := inst2.Call("grab")
		if trap != nil {
			t.Fatalf("alloc after quarantine: %v", trap)
		}
		for w := uint64(0); w < 40; w++ {
			if inst2.Pool.IsQuarantined(pmem.MediaBlockOf(uint64(p) + w)) {
				t.Fatalf("allocation %#x overlaps quarantined block", p)
			}
		}
	}
	if merr := inst2.Pool.VerifyMedia(); merr != nil {
		t.Fatalf("pool not resealed after quarantine: %v", merr)
	}
}

func TestMediaHeaderBlockPoisonOpensDegraded(t *testing.T) {
	inst := newDemo(t)
	for i := int64(0); i < 8; i++ {
		inst.Call("put", i, 100+i)
	}
	// Poison the header block (block 0) and save a FULL image: the checkpoint
	// log reconstructs the payload words it checkpointed, and what it cannot
	// prove in block 0 degrades the pool rather than quarantining the header.
	if err := inst.InjectMediaFault(MediaFault{Kind: MediaBlockPoison, Addr: pmem.Base, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := inst.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	inst2, err := OpenImage("demo", demoSource, Config{RecoverFn: "recover_"}, &buf)
	if err != nil {
		t.Fatalf("header-block poison failed the open instead of degrading: %v", err)
	}
	if inst2.LastScrub == nil {
		t.Fatal("no scrub report despite poisoned header block")
	}
	if !inst2.LastScrub.Healthy() {
		t.Fatalf("opened with unhealthy scrub report: %s", inst2.LastScrub)
	}
	if !inst2.LastScrub.Degraded || !inst2.Pool.MediaDegraded() {
		t.Fatalf("header-block loss did not degrade the pool: %s", inst2.LastScrub)
	}
}
