package arthas

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"arthas/internal/faults"
	"arthas/internal/obs"
)

// TestObsPipelineE2E runs fault f1 end-to-end under Arthas with a recording
// sink and asserts the span tree reproduces the paper's Figure 4 phases in
// order: run → detect → mitigate (plan → revert×N → re-execute) → recovered.
func TestObsPipelineE2E(t *testing.T) {
	rec := obs.NewRecorder()
	out, err := faults.RunArthas(faults.F1(), faults.RunConfig{WorkloadOps: 200, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Recovered {
		t.Fatalf("f1 not recovered: %+v", out)
	}

	// Phase order: first occurrence of each phase span must be monotone.
	names := rec.SpanNames()
	first := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		return -1
	}
	phases := []string{
		"pipeline.run", "pipeline.detect", "reactor.mitigate",
		"reactor.plan", "reactor.revert", "reactor.reexec",
		"pipeline.recovered",
	}
	prev := -1
	for _, p := range phases {
		i := first(p)
		if i < 0 {
			t.Fatalf("phase span %q missing; spans: %v", p, names)
		}
		if i < prev {
			t.Fatalf("phase %q out of order at %d (prev phase at %d); spans: %v", p, i, prev, names)
		}
		prev = i
	}

	// Tree shape: plan, revert, and reexec spans all live under mitigate.
	spans := rec.Spans()
	parent := map[uint64]uint64{}
	var mitigateID uint64
	for _, s := range spans {
		parent[s.ID] = s.Parent
		if s.Name == "reactor.mitigate" && mitigateID == 0 {
			mitigateID = s.ID
		}
	}
	underMitigate := func(id uint64) bool {
		for id != 0 {
			if id == mitigateID {
				return true
			}
			id = parent[id]
		}
		return false
	}
	for _, s := range spans {
		switch s.Name {
		case "reactor.plan", "reactor.revert", "reactor.reexec":
			if !underMitigate(s.ID) {
				t.Fatalf("%s span %d not a descendant of reactor.mitigate", s.Name, s.ID)
			}
			if !s.Ended {
				t.Fatalf("%s span %d never ended", s.Name, s.ID)
			}
		}
	}

	// Attempt accounting comes from the same telemetry.
	if got := rec.SpanCount("reactor.reexec"); got != out.Attempts {
		t.Fatalf("reexec spans = %d, Outcome.Attempts = %d", got, out.Attempts)
	}
	if rec.SpanCount("reactor.revert") < 1 {
		t.Fatal("no reactor.revert spans recorded")
	}

	// Every instrumented layer reported.
	for _, c := range []string{
		"pmem.store", "pmem.persist", "ckpt.versions",
		"vm.instructions", "trace.events", "detector.observe",
	} {
		if rec.CounterValue(c) == 0 {
			t.Fatalf("counter %q is zero", c)
		}
	}
	if rec.CounterValue("detector.hard") == 0 {
		t.Fatal("hard-fault classification not recorded")
	}

	// The export is valid JSONL end to end.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < len(spans) {
		t.Fatalf("JSONL has %d lines for %d spans", lines, len(spans))
	}
}

// TestObsDisabledByDefault confirms a plain run attaches no telemetry: the
// instance works identically with the no-op sink (the zero-cost guarantee's
// functional half; the cost half is BenchmarkObs*).
func TestObsDisabledByDefault(t *testing.T) {
	out, err := faults.RunArthas(faults.F1(), faults.RunConfig{WorkloadOps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Recovered {
		t.Fatalf("f1 not recovered without observer: %+v", out)
	}
}
