package arthas

import (
	"reflect"
	"testing"
	"time"
)

// A multi-candidate hard fault engineered so the healing reversion sits
// DEEP in the plan order: check() reads every cell through one hot load
// instruction, so candidates follow address recency — and the poisoned
// write to cell 2 is older than a full round of benign writes to the other
// cells. The sequential search must fail through every newer candidate
// before reaching it; the speculative search probes candidates on
// copy-on-write pool forks, Workers at a time, with an identical outcome.
//
// Each re-execution restarts the system, and the benchmark instances carry
// a simulated RestartLatency (a real PM system pays process exec + pool
// remap + recovery scan per restart; the in-memory Restart is otherwise
// instant). Restart latency is what dominates real mitigation time, and it
// is what speculative sessions overlap — so it is the honest quantity to
// measure even on a single-core host, where the probes' interpreter CPU
// time cannot itself parallelize.
const checksumSource = `
fn init_() {
    var root = pmalloc(12);
    var i = 0;
    while (i < 8) {
        root[i] = 1;
        i = i + 1;
    }
    persist(root, 8);
    setroot(0, root);
    return 0;
}
fn set(i, v) {
    var root = getroot(0);
    root[i] = v;
    persist(root + i, 1);
    return 0;
}
fn check() {
    var root = getroot(0);
    var bad = 0;
    var sum = 0;
    var r = 0;
    while (r < 200) {
        var i = 0;
        while (i < 8) {
            var v = root[i];
            sum = sum + v;
            if (v > 999) {
                bad = 1;
            }
            i = i + 1;
        }
        r = r + 1;
    }
    assert(bad == 0);
    return sum;
}
`

// deployChecksum builds the instance, poisons cell 2, buries the poisoned
// write under a newer benign write to every other cell, and observes the
// failing check.
func deployChecksum(tb testing.TB, workers int) *Instance {
	tb.Helper()
	cfg := Config{RestartLatency: 4 * time.Millisecond}
	cfg.Reactor.Workers = workers
	inst, err := New("checksum", checksumSource, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if _, trap := inst.Call("init_"); trap != nil {
		tb.Fatal(trap)
	}
	for i := int64(0); i < 8; i++ {
		if _, trap := inst.Call("set", i, 10+i); trap != nil {
			tb.Fatal(trap)
		}
	}
	inst.Call("set", 2, 5000) // the hard fault: a persisted bad value
	for i := int64(0); i < 8; i++ {
		if i == 2 {
			continue
		}
		inst.Call("set", i, 20+i) // newer benign writes rank first in the plan
	}
	_, trap := inst.Call("check")
	if trap == nil {
		tb.Fatal("corrupted checksum did not trap")
	}
	inst.Observe(trap)
	return inst
}

func benchmarkMitigate(b *testing.B, workers int) {
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		inst := deployChecksum(b, workers)
		b.StartTimer()
		rep, err := inst.MitigateCall("check")
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Recovered {
			b.Fatal("not recovered")
		}
	}
}

// Compare re-execution wall time across worker counts with
// `go test -bench Mitigate`; the speculative search at -workers 4 cuts the
// deep-winner search time well over 2x.
func BenchmarkMitigateWorkers1(b *testing.B) { benchmarkMitigate(b, 1) }
func BenchmarkMitigateWorkers2(b *testing.B) { benchmarkMitigate(b, 2) }
func BenchmarkMitigateWorkers4(b *testing.B) { benchmarkMitigate(b, 4) }

// The parallel search must land on the same mitigation as the sequential
// one — same reverted sequences, same attempt charges — and the winner must
// genuinely be deep in the plan (a shallow winner would make the benchmark
// above measure nothing).
func TestParallelMitigateCallMatchesSequential(t *testing.T) {
	outcome := func(workers int) *Report {
		inst := deployChecksum(t, workers)
		rep, err := inst.MitigateCall("check")
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Recovered {
			t.Fatalf("workers=%d: not recovered", workers)
		}
		if _, trap := inst.Call("check"); trap != nil {
			t.Fatalf("workers=%d: still failing after mitigation: %v", workers, trap)
		}
		return rep
	}
	seq := outcome(1)
	if seq.Attempts < 8 {
		t.Fatalf("winner too shallow for a meaningful search: %d attempts", seq.Attempts)
	}
	for _, w := range []int{2, 4, 8} {
		par := outcome(w)
		if par.Attempts != seq.Attempts || par.FellBack != seq.FellBack ||
			par.ModeUsed != seq.ModeUsed || par.Replans != seq.Replans ||
			!reflect.DeepEqual(par.RevertedSeqs, seq.RevertedSeqs) {
			t.Fatalf("workers=%d diverged from sequential:\n  seq: attempts=%d seqs=%v\n  par: attempts=%d seqs=%v",
				w, seq.Attempts, seq.RevertedSeqs, par.Attempts, par.RevertedSeqs)
		}
	}
}
