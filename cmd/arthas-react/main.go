// Command arthas-react runs one of the twelve evaluated hard-fault cases
// end-to-end: deploy the target system, run the workload, trigger the bug,
// confirm it recurs across restart, and mitigate it with the chosen
// solution (Arthas, pmCRIU, or ArCkpt).
//
// Usage:
//
//	arthas-react [-solution arthas|pmcriu|arckpt] [-mode purge|rollback]
//	             [-ops N] [-batch N] [-trace FILE] [-metrics] f1..f12
//
// -trace FILE writes the full pipeline telemetry (run/detect/plan/revert/
// re-execute spans plus per-layer metrics) as JSONL; -metrics prints a
// summary to stderr. See docs/OBSERVABILITY.md.
//
// Example:
//
//	arthas-react -solution arthas f6
package main

import (
	"flag"
	"fmt"
	"os"

	"arthas/internal/faults"
	"arthas/internal/obs"
	"arthas/internal/reactor"
)

func main() {
	solution := flag.String("solution", "arthas", "mitigation solution: arthas, pmcriu, arckpt")
	mode := flag.String("mode", "purge", "arthas reversion mode: purge or rollback")
	ops := flag.Int("ops", 0, "workload operations (0 = case default)")
	batch := flag.Int("batch", 1, "sequence numbers reverted per re-execution")
	traceFile := flag.String("trace", "", "write telemetry (spans + metrics) as JSONL to this file")
	metrics := flag.Bool("metrics", false, "print a telemetry summary to stderr on exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: arthas-react [-solution S] [-mode M] [-ops N] f1..f12")
		os.Exit(2)
	}
	b, err := faults.ByID(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("case %s: %s — %s (%s)\n", b.ID, b.System, b.Fault, b.Consequence)

	cfg := faults.RunConfig{WorkloadOps: *ops}
	cfg.Reactor = reactor.DefaultConfig()
	cfg.Reactor.Batch = *batch
	if *mode == "rollback" {
		cfg.Reactor.Mode = reactor.ModeRollback
	}
	var rec *obs.Recorder
	if *traceFile != "" || *metrics {
		rec = obs.NewRecorder()
		cfg.Obs = rec
	}

	var out *faults.Outcome
	switch *solution {
	case "arthas":
		out, err = faults.RunArthas(b, cfg)
	case "pmcriu":
		out, err = faults.RunPmCRIU(b, cfg)
	case "arckpt":
		out, err = faults.RunArCkpt(b, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown solution %q\n", *solution)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil {
		if *traceFile != "" {
			f, ferr := os.Create(*traceFile)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, ferr)
				os.Exit(1)
			}
			if werr := rec.WriteJSONL(f); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote trace %s\n", *traceFile)
		}
		if *metrics {
			fmt.Fprint(os.Stderr, rec.Summary())
		}
	}
	fmt.Printf("hard fault confirmed: %v\n", out.HardFault)
	if out.Recovered {
		fmt.Printf("RECOVERED by %s in %d attempt(s), %v\n", out.Solution, out.Attempts, out.MitigationTime)
	} else {
		fmt.Printf("NOT RECOVERED by %s after %d attempt(s) (timed out: %v)\n", out.Solution, out.Attempts, out.TimedOut)
	}
	if out.Meta.IsLeak {
		fmt.Printf("leaked blocks freed: %d\n", out.Freed)
	} else {
		fmt.Printf("discarded: %d checkpointed updates (%.3f%% of all recorded)\n",
			out.RevertedItems, out.DataLossPct)
	}
	if out.Consistent != nil {
		fmt.Printf("post-recovery consistency: VIOLATED: %v\n", out.Consistent)
	} else if out.Recovered {
		fmt.Println("post-recovery consistency: ok")
	}
	if !out.Recovered {
		os.Exit(1)
	}
}
