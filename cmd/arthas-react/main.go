// Command arthas-react runs one of the twelve evaluated hard-fault cases
// end-to-end: deploy the target system, run the workload, trigger the bug,
// confirm it recurs across restart, and mitigate it with the chosen
// solution (Arthas, pmCRIU, or ArCkpt).
//
// Usage:
//
//	arthas-react [-solution arthas|pmcriu|arckpt] [-mode purge|rollback]
//	             [-ops N] [-batch N] [-workers N] [-trace FILE] [-metrics]
//	             [-flight N] [-debug ADDR] [-incident FILE] f1..f12
//
// -workers N > 1 runs the Arthas reversion search speculatively in
// parallel on copy-on-write pool forks (docs/PARALLEL_MITIGATION.md); the
// mitigation outcome is identical to the sequential search's.
//
// -trace FILE writes the full pipeline telemetry (run/detect/plan/revert/
// re-execute spans plus per-layer metrics) as JSONL; -metrics prints a
// summary to stderr. -flight N keeps a ring of the last N events and
// -debug ADDR serves pprof, /metrics, /flight, /healthz over HTTP while
// the case runs. -incident FILE attaches the provenance index and writes
// the end-to-end `arthas-incident/v1` report after mitigation; the report
// is deterministic across -workers settings. See docs/OBSERVABILITY.md.
//
// Example:
//
//	arthas-react -solution arthas f6
package main

import (
	"flag"
	"fmt"
	"os"

	"arthas/internal/faults"
	"arthas/internal/obs"
	"arthas/internal/reactor"
)

func main() {
	solution := flag.String("solution", "arthas", "mitigation solution: arthas, pmcriu, arckpt")
	mode := flag.String("mode", "purge", "arthas reversion mode: purge or rollback")
	ops := flag.Int("ops", 0, "workload operations (0 = case default)")
	batch := flag.Int("batch", 1, "sequence numbers reverted per re-execution")
	workers := flag.Int("workers", 1, "speculative mitigation workers (1 = sequential search)")
	traceFile := flag.String("trace", "", "write telemetry (spans + metrics) as JSONL to this file")
	metrics := flag.Bool("metrics", false, "print a telemetry summary to stderr on exit")
	flight := flag.Int("flight", obs.DefaultFlightEvents, "flight-recorder ring size in events (0 disables)")
	debugAddr := flag.String("debug", "", "serve pprof, /metrics, /flight, /healthz on this address (e.g. localhost:6060)")
	incidentFile := flag.String("incident", "", "write the arthas-incident/v1 report to this file (arthas solution only; attaches the provenance index)")
	optimize := flag.Bool("opt", false, "run the flush/fence-elimination pass on the system before deployment (all solutions honor it; docs/OPTIMIZER.md)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: arthas-react [-solution S] [-mode M] [-ops N] f1..f12")
		os.Exit(2)
	}
	b, err := faults.ByID(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("case %s: %s — %s (%s)\n", b.ID, b.System, b.Fault, b.Consequence)

	cfg := faults.RunConfig{WorkloadOps: *ops, Optimize: *optimize}
	cfg.Reactor = reactor.DefaultConfig()
	cfg.Reactor.Batch = *batch
	cfg.Reactor.Workers = *workers
	if *mode == "rollback" {
		cfg.Reactor.Mode = reactor.ModeRollback
	}
	if *incidentFile != "" {
		if *solution != "arthas" {
			fmt.Fprintln(os.Stderr, "-incident requires -solution arthas")
			os.Exit(2)
		}
		cfg.Provenance = true
	}
	var rec *obs.Recorder
	var fl *obs.Flight
	if *flight > 0 {
		fl = obs.NewFlight(*flight)
	}
	if *traceFile != "" || *metrics || *debugAddr != "" {
		rec = obs.NewRecorder()
	}
	// The fault runners own their instances internally, so the flight
	// recorder rides along as a second sink on the pipeline's Obs.
	switch {
	case rec != nil && fl != nil:
		cfg.Obs = obs.Multi(rec, fl)
	case rec != nil:
		cfg.Obs = rec
	case fl != nil:
		cfg.Obs = fl
	}
	if *debugAddr != "" {
		srv, addr, derr := obs.ServeDebug(*debugAddr, rec, fl, nil)
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint http://%s\n", addr)
	}

	var out *faults.Outcome
	switch *solution {
	case "arthas":
		out, err = faults.RunArthas(b, cfg)
	case "pmcriu":
		out, err = faults.RunPmCRIU(b, cfg)
	case "arckpt":
		out, err = faults.RunArCkpt(b, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown solution %q\n", *solution)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rec != nil {
		if *traceFile != "" {
			f, ferr := os.Create(*traceFile)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, ferr)
				os.Exit(1)
			}
			if werr := rec.WriteJSONL(f); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote trace %s\n", *traceFile)
		}
		if *metrics {
			fmt.Fprint(os.Stderr, rec.Summary())
		}
	}
	if *incidentFile != "" {
		if out.Incident == nil {
			fmt.Fprintln(os.Stderr, "no incident assembled (case never reached mitigation)")
			os.Exit(1)
		}
		if werr := os.WriteFile(*incidentFile, out.Incident.JSON(), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote incident %s\n", *incidentFile)
	}
	fmt.Printf("hard fault confirmed: %v\n", out.HardFault)
	if out.Recovered {
		fmt.Printf("RECOVERED by %s in %d attempt(s), %v\n", out.Solution, out.Attempts, out.MitigationTime)
	} else {
		fmt.Printf("NOT RECOVERED by %s after %d attempt(s) (timed out: %v)\n", out.Solution, out.Attempts, out.TimedOut)
	}
	if out.Meta.IsLeak {
		fmt.Printf("leaked blocks freed: %d\n", out.Freed)
	} else {
		fmt.Printf("discarded: %d checkpointed updates (%.3f%% of all recorded)\n",
			out.RevertedItems, out.DataLossPct)
	}
	if out.Consistent != nil {
		fmt.Printf("post-recovery consistency: VIOLATED: %v\n", out.Consistent)
	} else if out.Recovered {
		fmt.Println("post-recovery consistency: ok")
	}
	if !out.Recovered {
		os.Exit(1)
	}
}
