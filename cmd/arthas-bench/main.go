// Command arthas-bench regenerates the paper's tables and figures from the
// reproduced systems, faults, and solutions.
//
// Usage:
//
//	arthas-bench [-exp NAME] [-ops N] [-ycsb N] [-inserts N] [-seeds N]
//	             [-json FILE] [-workers N]
//
//	-json   run the full evaluation and write every table/figure result as
//	        one structured JSON document (schema arthas-bench/v1) instead
//	        of text; see BENCH_baseline.json for a committed example
//	-workers N > 1 adds a sequential-vs-parallel speculative-mitigation
//	        comparison ("workers"/"parallel" JSON fields, or `-exp
//	        parallel` as text); at the default 1 the output is unchanged
//	-exp    which experiment to run (default "all"):
//	        table1 fig2 fig3 types table2          (study + dataset)
//	        table3 table4 table5 fig8 fig9 fig11   (recoverability matrix)
//	        fig10 table6                           (batch vs one-by-one)
//	        parallel                               (speculative speedup)
//	        table7                                 (invariants/checksums)
//	        fig12 table8                           (runtime overhead)
//	        table9                                 (static analysis)
//	        scrub                                  (media checksum/scrub cost)
//	        provenance                             (write-lineage cost + persist amplification)
//	        fleet                                  (sharded serving fleet: scaling + mid-run fault)
//	        repl                                   (replicated pools: overhead, lag, failover vs mitigation)
//	        optimize                               (flush/fence elimination: before/after persists)
//	        all                                    (everything)
//
// -exp fleet honors -workers (per-shard speculative mitigation), -clients,
// and -ops (per-client op count); combined with -json FILE it writes a
// fleet-only arthas-bench/v1 document (the CI fleet smoke artifact) instead
// of text.
//
// -exp repl honors -clients and -ops; with -json FILE it writes a repl-only
// arthas-bench/v1 document (the CI repl job artifact) instead of text.
//
// -exp optimize runs every fixture and paper system unoptimized and under
// the internal/opt flush/fence-elimination pass (provenance attached) and
// reports static rewrites, persist-op counts, redundant-persist ratios,
// and throughput; with -json FILE it writes an optimize-only
// arthas-bench/v1 document (the CI optimizer artifact). Honors -ops. Run
// from the repo root (reads testdata/*.pml).
//
// Absolute numbers differ from the paper (the substrate is a simulator on
// logical time); the shapes are what reproduce. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"arthas/internal/experiments"
	"arthas/internal/faults"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	ops := flag.Int("ops", 0, "fault-case workload operations (0 = defaults)")
	ycsb := flag.Int("ycsb", 100_000, "YCSB ops for overhead runs")
	inserts := flag.Int("inserts", 100_000, "insert ops for overhead runs")
	seeds := flag.Int("seeds", 10, "seeds for probabilistic pmCRIU cases")
	jsonOut := flag.String("json", "", "write the full evaluation as structured JSON to this file")
	workers := flag.Int("workers", 1, "add a sequential-vs-parallel mitigation comparison at this worker count (1 = off; JSON output unchanged)")
	clients := flag.Int("clients", 0, "closed-loop clients for -exp fleet (0 = default 4)")
	flag.Parse()

	mcfg := experiments.MatrixConfig{Seeds: *seeds}
	mcfg.Run.WorkloadOps = *ops
	ocfg := experiments.OverheadConfig{YCSBOps: *ycsb, InsertOps: *inserts}

	if *exp == "fleet" {
		fcfg := experiments.FleetConfig{Clients: *clients, OpsPerClient: *ops}
		if *workers > 1 {
			fcfg.Workers = *workers
		}
		fr, err := experiments.RunFleet(fcfg)
		check(err)
		fmt.Print(fr.Text())
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			check(err)
			check(fr.WriteJSON(f))
			check(f.Close())
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return
	}

	if *exp == "repl" {
		rr, err := experiments.RunRepl(experiments.ReplConfig{Clients: *clients, OpsPerClient: *ops})
		check(err)
		fmt.Print(rr.Text())
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			check(err)
			check(rr.WriteJSON(f))
			check(f.Close())
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return
	}

	if *exp == "optimize" {
		or, err := experiments.RunOptimize(experiments.OptimizeConfig{Ops: *ops})
		check(err)
		fmt.Print(or.Text())
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			check(err)
			check(or.WriteJSON(f))
			check(f.Close())
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return
	}

	if *jsonOut != "" {
		rep, err := experiments.FullJSON(experiments.FullConfig{
			Matrix: mcfg, Overhead: ocfg, Workers: *workers,
		})
		check(err)
		f, err := os.Create(*jsonOut)
		check(err)
		check(rep.Write(f))
		check(f.Close())
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}

	needMatrix := map[string]bool{
		"table3": true, "table4": true, "table5": true,
		"fig8": true, "fig9": true, "fig11": true,
	}

	switch {
	case *exp == "all":
		text, err := experiments.FullReport(experiments.FullConfig{
			Matrix: mcfg, Overhead: ocfg,
		})
		check(err)
		fmt.Print(text)
	case *exp == "table1":
		fmt.Print(experiments.Table1())
	case *exp == "fig2":
		fmt.Print(experiments.Fig2())
	case *exp == "fig3":
		fmt.Print(experiments.Fig3())
	case *exp == "types":
		fmt.Print(experiments.PropagationTypes())
	case *exp == "table2":
		fmt.Print(experiments.Table2())
	case needMatrix[*exp]:
		m, err := experiments.RunMatrix(mcfg)
		check(err)
		switch *exp {
		case "table3":
			fmt.Print(m.Table3())
		case "table4":
			fmt.Print(m.Table4())
		case "table5":
			fmt.Print(m.Table5())
		case "fig8":
			fmt.Print(m.Fig8())
		case "fig9":
			fmt.Print(m.Fig9())
		case "fig11":
			fmt.Print(m.Fig11())
		}
	case *exp == "fig10" || *exp == "table6":
		br, err := experiments.RunBatchComparison(faults.RunConfig{})
		check(err)
		if *exp == "fig10" {
			fmt.Print(br.Fig10())
		} else {
			fmt.Print(br.Table6())
		}
	case *exp == "table7":
		text, err := experiments.Table7(faults.RunConfig{})
		check(err)
		fmt.Print(text)
	case *exp == "fig12" || *exp == "table8":
		res, err := experiments.MeasureOverhead(ocfg, []experiments.Variant{
			experiments.Vanilla, experiments.WithArthas,
			experiments.WithCheckpoint, experiments.WithInstr, experiments.WithPmCRIU,
		})
		check(err)
		if *exp == "fig12" {
			fmt.Print(res.Fig12())
		} else {
			fmt.Print(res.Table8())
		}
	case *exp == "parallel":
		w := *workers
		if w < 2 {
			w = 4
		}
		pc, err := experiments.RunParallelComparison(faults.RunConfig{}, w)
		check(err)
		fmt.Print(pc.Text())
	case *exp == "table9":
		ts, err := experiments.MeasureStatic()
		check(err)
		fmt.Print(experiments.Table9(ts))
	case *exp == "scrub":
		sr, err := experiments.RunScrub(experiments.ScrubConfig{})
		check(err)
		fmt.Print(sr.Text())
	case *exp == "provenance":
		pr, err := experiments.RunProvenance(experiments.ProvenanceConfig{})
		check(err)
		fmt.Print(pr.Text())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
