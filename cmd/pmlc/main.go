// Command pmlc compiles and inspects PML programs.
//
// Usage:
//
//	pmlc [-dump] [-fmt] [-stats] file.pml
//
//	-dump   print the compiled IR listing
//	-fmt    pretty-print the parsed source
//	-stats  print module statistics
//
// With no flags, pmlc type-checks and verifies the program silently
// (exit status reports success).
package main

import (
	"flag"
	"fmt"
	"os"

	"arthas/internal/ir"
	"arthas/internal/pml"
)

func main() {
	dump := flag.Bool("dump", false, "print the compiled IR listing")
	format := flag.Bool("fmt", false, "pretty-print the parsed source")
	stats := flag.Bool("stats", false, "print module statistics")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pmlc [-dump] [-fmt] [-stats] file.pml")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	prog, err := pml.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	if *format {
		fmt.Print(pml.Print(prog))
	}

	mod, err := ir.Compile(path, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	if *dump {
		fmt.Print(ir.Print(mod))
	}
	if *stats {
		instrs := 0
		for _, f := range mod.Funcs {
			instrs += f.NumInstrs
		}
		fmt.Printf("%s: %d globals, %d functions, %d IR instructions\n",
			path, len(mod.Globals), len(mod.Funcs), instrs)
	}
}
