// Command arthas-analyze runs the Arthas static analyzer over a PML
// program: it identifies persistent-memory instructions, assigns trace
// GUIDs, builds the Program Dependence Graph, and can compute backward
// slices — the offline half of the paper's Figure 4 workflow.
//
// Usage:
//
//	arthas-analyze [-guids] [-slice GUID] [-builtin NAME] [file.pml]
//
//	-guids        print the <GUID, function, location, instruction> map
//	-slice N      print the backward slice of the PM instruction with GUID N
//	-builtin S    analyze a built-in target system instead of a file
//	              (memcached, redis, pelikan, pmemkv, cceh)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"arthas/internal/analysis"
	"arthas/internal/ir"
	"arthas/internal/systems"
)

func main() {
	guids := flag.Bool("guids", false, "print the GUID metadata map")
	sliceGUID := flag.Int("slice", 0, "print the backward slice of this GUID's instruction")
	builtin := flag.String("builtin", "", "analyze a built-in system (memcached, redis, pelikan, pmemkv, cceh)")
	flag.Parse()

	name, src, err := loadSource(*builtin, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	mod, err := ir.CompileSource(name, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	res := analysis.Analyze(mod)
	stats := res.Stats()
	fmt.Printf("%s: %d functions, %d instructions, %d PM instructions, %d PDG edges\n",
		name, stats.Functions, stats.Instructions, stats.PMInstrs, stats.PDGEdges)
	fmt.Printf("analysis: points-to %v, PDG %v, instrumentation %v (total %v)\n",
		res.PointsToTime.Round(time.Microsecond), res.PDGTime.Round(time.Microsecond),
		res.InstrTime.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))

	if *guids {
		fmt.Print(analysis.FormatGUIDMap(res.GUIDs))
	}
	if *sliceGUID > 0 {
		in := res.InstrByGUID(*sliceGUID)
		if in == nil {
			fmt.Fprintf(os.Stderr, "no instruction with GUID %d\n", *sliceGUID)
			os.Exit(1)
		}
		sl := res.PDG.BackwardSlice(in)
		fmt.Printf("backward slice of GUID %d: %d nodes (%d PM)\n",
			*sliceGUID, len(sl.Nodes), len(sl.PMSlice().Nodes))
		for _, n := range sl.PMSlice().Nodes {
			fmt.Printf("  d=%-3d %s\n", n.Dist, res.PDG.Describe(n.Instr))
		}
	}
}

func loadSource(builtin string, args []string) (string, string, error) {
	if builtin != "" {
		var sys *systems.System
		switch builtin {
		case "memcached":
			sys = systems.Memcached()
		case "redis":
			sys = systems.Redis()
		case "pelikan":
			sys = systems.Pelikan()
		case "pmemkv":
			sys = systems.PMEMKV()
		case "cceh":
			sys = systems.CCEH()
		default:
			return "", "", fmt.Errorf("unknown built-in %q", builtin)
		}
		return sys.Name, sys.Source, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("usage: arthas-analyze [-guids] [-slice GUID] (-builtin NAME | file.pml)")
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return args[0], string(b), nil
}
