// Command arthas-run deploys a PML program under the full Arthas runtime
// (checkpoint log + address trace) and executes a script of requests,
// reporting traps, checkpoint activity, and pool usage.
//
// Usage:
//
//	arthas-run [-recover FN] [-pool WORDS] [-trace FILE] [-metrics]
//	           file.pml "call args; call args; ..."
//
// Script statements are semicolon-separated function calls with integer
// arguments, plus the pseudo-ops "restart" (crash + restart) and "stats".
//
// -trace FILE writes the full telemetry stream (spans + metrics from every
// runtime layer) as JSONL; -metrics prints a human-readable summary to
// stderr. See docs/OBSERVABILITY.md.
//
// Example:
//
//	arthas-run demo.pml "init_; put 1 42; get 1; restart; get 1; stats"
package main

import (
	"flag"
	"fmt"
	"os"

	"arthas"
	"arthas/internal/obs"
)

func main() {
	recoverFn := flag.String("recover", "", "recovery function run on restart")
	pool := flag.Int("pool", 1<<16, "pool size in words")
	poolFile := flag.String("poolfile", "", "image file: reopened if it exists, saved on exit (durable state AND mitigation history persist across invocations)")
	traceFile := flag.String("trace", "", "write telemetry (spans + metrics) as JSONL to this file")
	metrics := flag.Bool("metrics", false, "print a telemetry summary to stderr on exit")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, `usage: arthas-run [-recover FN] [-pool WORDS] [-poolfile F] [-trace F] [-metrics] file.pml "init_; put 1 2; get 1"`)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := arthas.Config{PoolWords: *pool, RecoverFn: *recoverFn}
	var rec *obs.Recorder
	if *traceFile != "" || *metrics {
		rec = obs.NewRecorder()
		cfg.Observer = rec
	}

	var inst *arthas.Instance
	if *poolFile != "" {
		if f, ferr := os.Open(*poolFile); ferr == nil {
			inst, err = arthas.OpenImage(flag.Arg(0), string(src), cfg, f)
			f.Close()
			if err == nil {
				fmt.Printf("reopened image %s\n", *poolFile)
			}
		}
	}
	if inst == nil && err == nil {
		inst, err = arthas.New(flag.Arg(0), string(src), cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	lines, scriptErr := inst.RunScript(flag.Arg(1))
	for _, line := range lines {
		fmt.Println(line)
	}

	if rec != nil {
		if *traceFile != "" {
			f, ferr := os.Create(*traceFile)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, ferr)
				os.Exit(1)
			}
			if werr := rec.WriteJSONL(f); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote trace %s\n", *traceFile)
		}
		if *metrics {
			fmt.Fprint(os.Stderr, rec.Summary())
		}
	}

	if *poolFile != "" {
		f, ferr := os.Create(*poolFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		if err := inst.SaveImage(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("saved image %s\n", *poolFile)
	}
	if scriptErr != nil {
		fmt.Fprintln(os.Stderr, scriptErr)
		os.Exit(1)
	}
}
