// Command arthas-run deploys a PML program under the full Arthas runtime
// (checkpoint log + address trace) and executes a script of requests,
// reporting traps, checkpoint activity, and pool usage.
//
// Usage:
//
//	arthas-run [-recover FN] [-pool WORDS] [-workers N] [-trace FILE]
//	           [-metrics] [-flight N] [-debug ADDR]
//	           file.pml "call args; call args; ..."
//
// Script statements are semicolon-separated function calls with integer
// arguments, plus the pseudo-ops "restart" (crash + restart) and "stats".
//
// -workers N > 1 makes the "mitigate FN ARGS" pseudo-op search candidate
// reversions speculatively in parallel on copy-on-write pool forks
// (docs/PARALLEL_MITIGATION.md); the outcome matches the sequential search.
//
// -trace FILE streams the full telemetry (spans + metrics from every
// runtime layer) as JSONL. The file is opened at startup and spans are
// written the moment they end, so a panic or trap mid-script loses at
// most the spans still open — not the whole trace. -metrics prints a
// human-readable summary to stderr.
//
// -flight N keeps a crash-surviving ring of the last N observability
// events; the tail is saved inside -poolfile images and can be read back
// later with `arthas-inspect flight`. -debug ADDR serves pprof, /metrics,
// /flight, and /healthz over HTTP while the script runs.
// See docs/OBSERVABILITY.md.
//
// Example:
//
//	arthas-run demo.pml "init_; put 1 42; get 1; restart; get 1; stats"
package main

import (
	"flag"
	"fmt"
	"os"

	"arthas"
	"arthas/internal/obs"
)

func main() {
	recoverFn := flag.String("recover", "", "recovery function run on restart")
	pool := flag.Int("pool", 1<<16, "pool size in words")
	workers := flag.Int("workers", 1, "speculative workers for the script's mitigate pseudo-op (1 = sequential)")
	poolFile := flag.String("poolfile", "", "image file: reopened if it exists, saved on exit (durable state AND mitigation history persist across invocations)")
	traceFile := flag.String("trace", "", "stream telemetry (spans + metrics) as JSONL to this file")
	metrics := flag.Bool("metrics", false, "print a telemetry summary to stderr on exit")
	flight := flag.Int("flight", obs.DefaultFlightEvents, "flight-recorder ring size in events (0 disables); the tail travels inside -poolfile images")
	debugAddr := flag.String("debug", "", "serve pprof, /metrics, /flight, /healthz on this address (e.g. localhost:6060)")
	optimize := flag.Bool("opt", false, "run the flush/fence-elimination pass before execution (docs/OPTIMIZER.md)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, `usage: arthas-run [-recover FN] [-pool WORDS] [-workers N] [-poolfile F] [-trace F] [-metrics] [-flight N] [-debug ADDR] [-opt] file.pml "init_; put 1 2; get 1"`)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := arthas.Config{PoolWords: *pool, RecoverFn: *recoverFn, FlightEvents: *flight, Optimize: *optimize}
	cfg.Reactor.Workers = *workers
	var rec *obs.Recorder
	var traceF *os.File
	if *traceFile != "" || *metrics || *debugAddr != "" {
		rec = obs.NewRecorder()
		cfg.Observer = rec
		if *traceFile != "" {
			traceF, err = os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rec.StreamTo(traceF)
		}
	}

	var inst *arthas.Instance
	if *poolFile != "" {
		if f, ferr := os.Open(*poolFile); ferr == nil {
			inst, err = arthas.OpenImage(flag.Arg(0), string(src), cfg, f)
			f.Close()
			if err == nil {
				fmt.Printf("reopened image %s\n", *poolFile)
			}
		}
	}
	if inst == nil && err == nil {
		inst, err = arthas.New(flag.Arg(0), string(src), cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *debugAddr != "" {
		srv, addr, derr := obs.ServeDebug(*debugAddr, rec, inst.Flight, inst.Health)
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint http://%s\n", addr)
	}

	lines, scriptErr := inst.RunScript(flag.Arg(1))
	for _, line := range lines {
		fmt.Println(line)
	}

	if rec != nil {
		if traceF != nil {
			if werr := rec.CloseStream(); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
				os.Exit(1)
			}
			if cerr := traceF.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, cerr)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote trace %s\n", *traceFile)
		}
		if *metrics {
			fmt.Fprint(os.Stderr, rec.Summary())
		}
	}

	if *poolFile != "" {
		f, ferr := os.Create(*poolFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		if err := inst.SaveImage(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("saved image %s\n", *poolFile)
	}
	if scriptErr != nil {
		fmt.Fprintln(os.Stderr, scriptErr)
		os.Exit(1)
	}
}
