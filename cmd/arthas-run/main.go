// Command arthas-run deploys a PML program under the full Arthas runtime
// (checkpoint log + address trace) and executes a script of requests,
// reporting traps, checkpoint activity, and pool usage.
//
// Usage:
//
//	arthas-run [-recover FN] [-pool WORDS] file.pml "call args; call args; ..."
//
// Script statements are semicolon-separated function calls with integer
// arguments, plus the pseudo-ops "restart" (crash + restart) and "stats".
//
// Example:
//
//	arthas-run demo.pml "init_; put 1 42; get 1; restart; get 1; stats"
package main

import (
	"flag"
	"fmt"
	"os"

	"arthas"
)

func main() {
	recoverFn := flag.String("recover", "", "recovery function run on restart")
	pool := flag.Int("pool", 1<<16, "pool size in words")
	poolFile := flag.String("poolfile", "", "image file: reopened if it exists, saved on exit (durable state AND mitigation history persist across invocations)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, `usage: arthas-run [-recover FN] [-pool WORDS] [-poolfile F] file.pml "init_; put 1 2; get 1"`)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := arthas.Config{PoolWords: *pool, RecoverFn: *recoverFn}

	var inst *arthas.Instance
	if *poolFile != "" {
		if f, ferr := os.Open(*poolFile); ferr == nil {
			inst, err = arthas.OpenImage(flag.Arg(0), string(src), cfg, f)
			f.Close()
			if err == nil {
				fmt.Printf("reopened image %s\n", *poolFile)
			}
		}
	}
	if inst == nil && err == nil {
		inst, err = arthas.New(flag.Arg(0), string(src), cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	lines, scriptErr := inst.RunScript(flag.Arg(1))
	for _, line := range lines {
		fmt.Println(line)
	}

	if *poolFile != "" {
		f, ferr := os.Create(*poolFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		if err := inst.SaveImage(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("saved image %s\n", *poolFile)
	}
	if scriptErr != nil {
		fmt.Fprintln(os.Stderr, scriptErr)
		os.Exit(1)
	}
}
