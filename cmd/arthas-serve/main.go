// Command arthas-serve runs a sharded serving fleet: N independent Arthas
// pool shards behind deterministic key routing, each mitigating hard faults
// online while its siblings keep serving (docs/FLEET.md).
//
// Usage:
//
//	arthas-serve [-addr :8080] [-shards N] [-workers N] [-pool WORDS]
//	             [-restart-latency DUR] [-source FILE] [-no-provenance]
//	             [-replicas] [-repl-max-lag N] [-chaos-fail-mitigation]
//
// The default system is the fleet's checksummed KV store; -source swaps in
// any PML program following the same entry-point conventions (see
// fleet.Funcs). Drive it:
//
//	curl -X PUT  localhost:8080/kv/7 -d 42     # upsert
//	curl         localhost:8080/kv/7           # read
//	curl         localhost:8080/healthz        # aggregated shard health
//	curl -X POST 'localhost:8080/inject?key=7' # hard-fault drill
//
// -replicas attaches a standby replica to every shard (docs/REPLICATION.md):
// the shard ships its checkpoint log to the standby and, when a hard fault
// exhausts mitigation, promotes it instead of refusing traffic. /repl reports
// per-shard replication status, POST /promote?shard=N runs a failover drill,
// and GET /image/N downloads a shard's durable image for offline inspection
// (arthas-inspect verify/repl). -chaos-fail-mitigation forces every online
// mitigation to fail — the chaos switch CI uses to prove the promotion path.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"arthas/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	shards := flag.Int("shards", 4, "number of pool shards")
	workers := flag.Int("workers", 1, "per-shard speculative mitigation workers")
	pool := flag.Int("pool", 1<<16, "pool words per shard")
	restartLat := flag.Duration("restart-latency", 0, "simulated per-shard restart cost")
	sourceFile := flag.String("source", "", "PML program override (default: built-in checksummed KV)")
	noProv := flag.Bool("no-provenance", false, "disable write-lineage tracking (no incident reports)")
	replicas := flag.Bool("replicas", false, "attach a standby replica to every shard (promote-on-failure)")
	replMaxLag := flag.Int("repl-max-lag", 0, "max records a standby may trail its primary (0 = default 64)")
	chaosFail := flag.Bool("chaos-fail-mitigation", false, "chaos drill: force every online mitigation to fail")
	flag.Parse()

	source := ""
	if *sourceFile != "" {
		b, err := os.ReadFile(*sourceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		source = string(b)
	}

	f, err := fleet.New(fleet.Config{
		Shards:         *shards,
		Source:         source,
		PoolWords:      *pool,
		Workers:        *workers,
		RestartLatency: *restartLat,
		Provenance:     !*noProv,
		Replicas:       *replicas,
		ReplMaxLag:     *replMaxLag,

		ChaosMitigationFail: *chaosFail, // drill switch, not a serving option
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "arthas-serve: %d shards on http://%s\n", f.Shards(), ln.Addr())
	srv := &http.Server{Handler: newServer(f), ReadHeaderTimeout: 5 * time.Second}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
