package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"arthas/internal/fleet"
)

func testServer(t *testing.T, shards int) (*httptest.Server, *fleet.Fleet) {
	t.Helper()
	f, err := fleet.New(fleet.Config{Shards: shards, BaseName: "serve-test", Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(f))
	t.Cleanup(ts.Close)
	return ts, f
}

func do(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestServeKVRoundTrip(t *testing.T) {
	ts, _ := testServer(t, 2)
	if code, _ := do(t, "PUT", ts.URL+"/kv/7", "42"); code != http.StatusNoContent {
		t.Fatalf("put: %d", code)
	}
	if code, body := do(t, "GET", ts.URL+"/kv/7", ""); code != 200 || strings.TrimSpace(body) != "42" {
		t.Fatalf("get: %d %q", code, body)
	}
	// ?v= fallback for value-less bodies.
	if code, _ := do(t, "PUT", ts.URL+"/kv/8?v=99", ""); code != http.StatusNoContent {
		t.Fatalf("put ?v=: %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/kv/12345", ""); code != http.StatusNotFound {
		t.Fatalf("get missing: %d", code)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/kv/7", ""); code != http.StatusNoContent {
		t.Fatalf("del: %d", code)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/kv/7", ""); code != http.StatusNotFound {
		t.Fatalf("del again: %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/kv/notanint", ""); code != http.StatusBadRequest {
		t.Fatalf("bad key: %d", code)
	}
	if code, _ := do(t, "PUT", ts.URL+"/kv/9", ""); code != http.StatusBadRequest {
		t.Fatalf("valueless put: %d", code)
	}
}

func TestServeHealthAndShards(t *testing.T) {
	ts, _ := testServer(t, 3)
	code, body := do(t, "GET", ts.URL+"/healthz", "")
	if code != 200 {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var h struct {
		Status string `json:"status"`
		Shards []struct {
			Shard  int    `json:"shard"`
			Status string `json:"status"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Shards) != 3 {
		t.Fatalf("healthz payload: %+v", h)
	}
	code, body = do(t, "GET", ts.URL+"/shards", "")
	var stats []fleet.ShardStats
	if code != 200 {
		t.Fatalf("shards: %d", code)
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 || stats[0].State != "serving" {
		t.Fatalf("shards payload: %+v", stats)
	}
}

func TestServeRouteMatchesFleet(t *testing.T) {
	ts, f := testServer(t, 4)
	for key := int64(1); key <= 20; key++ {
		code, body := do(t, "GET", fmt.Sprintf("%s/route?key=%d", ts.URL, key), "")
		if code != 200 {
			t.Fatalf("route: %d", code)
		}
		var r struct {
			Shard int `json:"shard"`
		}
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatal(err)
		}
		if r.Shard != f.ShardFor(key) {
			t.Fatalf("key %d: /route says %d, fleet says %d", key, r.Shard, f.ShardFor(key))
		}
	}
}

// TestServeFaultDrill walks the full HTTP-visible escalation: inject a
// pre-writeback bit flip, watch the first read 500 (transient, restart), the
// second read heal online via mitigation, and the incident report publish.
func TestServeFaultDrill(t *testing.T) {
	ts, f := testServer(t, 2)
	if code, _ := do(t, "PUT", ts.URL+"/kv/11", "500"); code != http.StatusNoContent {
		t.Fatal("seed put failed")
	}
	code, body := do(t, "POST", ts.URL+"/inject?key=11&bit=4", "")
	if code != 200 {
		t.Fatalf("inject: %d %s", code, body)
	}
	var inj struct {
		Shard int `json:"shard"`
	}
	if err := json.Unmarshal([]byte(body), &inj); err != nil {
		t.Fatal(err)
	}

	// Strike one: trap → transient → restart → 500 to this client.
	if code, _ := do(t, "GET", ts.URL+"/kv/11", ""); code != http.StatusInternalServerError {
		t.Fatalf("first faulted read: %d, want 500", code)
	}
	// Strike two: hard fault → online mitigation → served from healed shard.
	if code, _ := do(t, "GET", ts.URL+"/kv/11", ""); code != 200 {
		t.Fatalf("post-mitigation read: %d, want 200", code)
	}
	if f.Stats()[inj.Shard].Recovered != 1 {
		t.Fatalf("shard %d stats: %+v", inj.Shard, f.Stats()[inj.Shard])
	}
	code, body = do(t, "GET", fmt.Sprintf("%s/incident?shard=%d", ts.URL, inj.Shard), "")
	if code != 200 || !strings.Contains(body, "arthas-incident/v1") {
		t.Fatalf("incident: %d %s", code, body)
	}
	// Injecting on a missing key reports conflict, not a trap.
	if code, _ := do(t, "POST", ts.URL+"/inject?key=424242", ""); code != http.StatusConflict {
		t.Fatalf("inject missing key: %d", code)
	}
}

func TestServeMetricsExposition(t *testing.T) {
	ts, _ := testServer(t, 2)
	do(t, "PUT", ts.URL+"/kv/1", "10")
	do(t, "GET", ts.URL+"/kv/1", "")
	code, body := do(t, "GET", ts.URL+"/metrics?format=prom", "")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"arthas_fleet_req",
		"arthas_fleet_shard_health{shard=\"0\",state=\"ok\"} 0",
		"arthas_fleet_shard_health{shard=\"1\",state=\"ok\"} 0",
		"arthas_fleet_health_worst 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, body)
		}
	}
	// Per-shard namespaced copies of shard telemetry appear alongside the
	// cross-shard aggregate.
	if !strings.Contains(body, "arthas_shard0_") {
		t.Fatalf("no shard0-prefixed metrics:\n%s", body)
	}
}

func TestServeAdminOps(t *testing.T) {
	ts, f := testServer(t, 2)
	if code, _ := do(t, "POST", ts.URL+"/scrub?shard=1", ""); code != 200 {
		t.Fatal("scrub failed")
	}
	if code, _ := do(t, "POST", ts.URL+"/restart?shard=0", ""); code != http.StatusNoContent {
		t.Fatal("restart failed")
	}
	if f.Stats()[0].Restarts != 1 {
		t.Fatalf("restart not counted: %+v", f.Stats()[0])
	}
	if code, _ := do(t, "POST", ts.URL+"/restart?shard=9", ""); code != http.StatusBadRequest {
		t.Fatal("out-of-range shard accepted")
	}
}

func testReplServer(t *testing.T, shards int, chaos bool) (*httptest.Server, *fleet.Fleet) {
	t.Helper()
	f, err := fleet.New(fleet.Config{
		Shards: shards, BaseName: "serve-repl", Provenance: true,
		Replicas: true, ReplMaxLag: 4, ChaosMitigationFail: chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(f))
	t.Cleanup(ts.Close)
	return ts, f
}

// TestServeReplSurface drives the replication endpoints end to end: status,
// an operator promote drill, and the durable-image download — then checks the
// drill cost nothing (the promoted primary still serves every key).
func TestServeReplSurface(t *testing.T) {
	ts, f := testReplServer(t, 2, false)
	for k := int64(1); k <= 20; k++ {
		if code, _ := do(t, "PUT", fmt.Sprintf("%s/kv/%d?v=%d", ts.URL, k, k*7), ""); code != http.StatusNoContent {
			t.Fatalf("put %d failed", k)
		}
	}
	code, body := do(t, "GET", ts.URL+"/repl", "")
	if code != 200 {
		t.Fatalf("/repl: %d %s", code, body)
	}
	var sts []struct {
		Connected bool   `json:"connected"`
		Seq       uint64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(body), &sts); err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 || !sts[0].Connected || sts[0].Seq == 0 {
		t.Fatalf("/repl payload: %+v", sts)
	}

	code, body = do(t, "POST", ts.URL+"/promote?shard=0", "")
	if code != 200 {
		t.Fatalf("/promote: %d %s", code, body)
	}
	var st fleet.ShardStats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "serving" || st.Promotions != 1 {
		t.Fatalf("promoted shard stats: %+v", st)
	}
	for k := int64(1); k <= 20; k++ {
		code, body := do(t, "GET", fmt.Sprintf("%s/kv/%d", ts.URL, k), "")
		if code != 200 || strings.TrimSpace(body) != fmt.Sprintf("%d", k*7) {
			t.Fatalf("get %d after drill: %d %q", k, code, body)
		}
	}
	if code, _ := do(t, "POST", ts.URL+"/promote?shard=9", ""); code != http.StatusBadRequest {
		t.Fatalf("promote out-of-range shard: %d", code)
	}

	resp, err := http.Get(ts.URL + "/image/0")
	if err != nil {
		t.Fatal(err)
	}
	img, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 || len(img) == 0 {
		t.Fatalf("/image/0: %d, %d bytes, %v", resp.StatusCode, len(img), err)
	}
	if resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("/image content type: %q", resp.Header.Get("Content-Type"))
	}
	if code, _ := do(t, "GET", ts.URL+"/image/99", ""); code != http.StatusBadRequest {
		t.Fatal("out-of-range image shard accepted")
	}
	_ = f
}

// TestServeReplDisabled pins the 404 contract on fleets without -replicas.
func TestServeReplDisabled(t *testing.T) {
	ts, _ := testServer(t, 2)
	if code, _ := do(t, "GET", ts.URL+"/repl", ""); code != http.StatusNotFound {
		t.Fatalf("/repl without replicas: %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/promote?shard=0", ""); code != http.StatusNotFound {
		t.Fatalf("/promote without replicas: %d", code)
	}
}

// TestServeChaosFailover is the HTTP view of the tentpole: with mitigation
// chaos-failed, the second faulted read is served by the promoted replica —
// 200 with the pre-fault value, not a 500 refusal.
func TestServeChaosFailover(t *testing.T) {
	ts, f := testReplServer(t, 2, true)
	if code, _ := do(t, "PUT", ts.URL+"/kv/11?v=500", ""); code != http.StatusNoContent {
		t.Fatal("seed put failed")
	}
	code, body := do(t, "POST", ts.URL+"/inject?key=11&bit=4", "")
	if code != 200 {
		t.Fatalf("inject: %d %s", code, body)
	}
	// Strike one: transient classification, restart, 500 to this client.
	if code, _ := do(t, "GET", ts.URL+"/kv/11", ""); code != http.StatusInternalServerError {
		t.Fatalf("first faulted read: %d, want 500", code)
	}
	// Strike two: hard fault, chaos-failed mitigation, replica promotion —
	// and the answer is the ORIGINAL value (corruption never shipped).
	code, body = do(t, "GET", ts.URL+"/kv/11", "")
	if code != 200 || strings.TrimSpace(body) != "500" {
		t.Fatalf("failover read: %d %q, want 200 \"500\"", code, body)
	}
	var inj struct {
		Shard int `json:"shard"`
	}
	_, routeBody := do(t, "GET", ts.URL+"/route?key=11", "")
	if err := json.Unmarshal([]byte(routeBody), &inj); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats()[inj.Shard]; st.Promotions != 1 || st.State != "serving" {
		t.Fatalf("shard %d after failover: %+v", inj.Shard, st)
	}
}
