package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"arthas/internal/fleet"
	"arthas/internal/obs"
)

// newServer wires a fleet into the serving mux. Split from main so tests
// drive the exact production handler stack through httptest.
//
// KV surface (status codes are the degraded-serving contract):
//
//	GET    /kv/{key}       200 value | 404 absent | 503 shard recovering | 500 trap
//	PUT    /kv/{key}       body or ?v= holds the int64 value
//	DELETE /kv/{key}
//
// Fleet surface:
//
//	GET  /healthz          aggregated per-shard health (JSON, worst-of code)
//	GET  /metrics          merged fleet+shard metrics (?format=prom for
//	                       Prometheus exposition with health gauges)
//	GET  /shards           per-shard serving counters
//	GET  /route?key=K      routing decision for a key
//	GET  /incident?shard=N last arthas-incident/v1 report of a shard
//	POST /inject?key=K&bit=B  flip one stored-value bit (fault drill)
//	POST /scrub?shard=N    fence the shard and run a media scrub
//	POST /restart?shard=N  operator restart (clears a failed shard)
//	/debug/pprof/*         live profiles
//
// Replication surface (404 unless the fleet runs with -replicas):
//
//	GET  /repl             per-shard replication status (lag, acks, seals)
//	POST /promote?shard=N  failover drill: ship, seal, cut over to the standby
//	GET  /image/{shard}    shard's durable image (arthas-inspect verify/repl)
func newServer(f *fleet.Fleet) http.Handler {
	mux := obs.NewFleetMux(f.MergedMetrics, f.Health)

	mux.HandleFunc("GET /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, ok := pathKey(w, r)
		if !ok {
			return
		}
		v, err := f.Get(key)
		if err != nil {
			writeFleetErr(w, err)
			return
		}
		if v == -1 {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "%d\n", v)
	})
	mux.HandleFunc("PUT /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, ok := pathKey(w, r)
		if !ok {
			return
		}
		val, err := bodyValue(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := f.Put(key, val); err != nil {
			writeFleetErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, ok := pathKey(w, r)
		if !ok {
			return
		}
		n, err := f.Del(key)
		if err != nil {
			writeFleetErr(w, err)
			return
		}
		if n == 0 {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /shards", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, f.Stats())
	})
	mux.HandleFunc("GET /route", func(w http.ResponseWriter, r *http.Request) {
		key, ok := queryInt(w, r, "key")
		if !ok {
			return
		}
		writeJSON(w, map[string]int64{"key": key, "shard": int64(f.ShardFor(key))})
	})
	mux.HandleFunc("GET /incident", func(w http.ResponseWriter, r *http.Request) {
		shard, ok := shardArg(w, r, f)
		if !ok {
			return
		}
		inc := f.Incident(shard)
		if inc == nil {
			http.Error(w, "no incident recorded", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(inc.JSON()) //nolint:errcheck // client went away; nothing to do
	})
	mux.HandleFunc("POST /inject", func(w http.ResponseWriter, r *http.Request) {
		key, ok := queryInt(w, r, "key")
		if !ok {
			return
		}
		bit := int64(0)
		if b := r.URL.Query().Get("bit"); b != "" {
			var err error
			if bit, err = strconv.ParseInt(b, 10, 8); err != nil || bit < 0 || bit > 63 {
				http.Error(w, "bad bit (0..63)", http.StatusBadRequest)
				return
			}
		}
		shard, err := f.InjectFault(key, uint(bit))
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]int64{"key": key, "shard": int64(shard), "bit": bit})
	})
	mux.HandleFunc("POST /scrub", func(w http.ResponseWriter, r *http.Request) {
		shard, ok := shardArg(w, r, f)
		if !ok {
			return
		}
		rep, err := f.Scrub(shard)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "%v\n", rep)
	})
	mux.HandleFunc("POST /restart", func(w http.ResponseWriter, r *http.Request) {
		shard, ok := shardArg(w, r, f)
		if !ok {
			return
		}
		if err := f.Restart(shard); err != nil {
			writeFleetErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /repl", func(w http.ResponseWriter, _ *http.Request) {
		if !f.Replicated() {
			http.Error(w, "fleet runs without replicas (-replicas)", http.StatusNotFound)
			return
		}
		writeJSON(w, f.ReplStatus())
	})
	mux.HandleFunc("POST /promote", func(w http.ResponseWriter, r *http.Request) {
		shard, ok := shardArg(w, r, f)
		if !ok {
			return
		}
		if !f.Replicated() {
			http.Error(w, "fleet runs without replicas (-replicas)", http.StatusNotFound)
			return
		}
		if err := f.Promote(shard); err != nil {
			writeFleetErr(w, err)
			return
		}
		writeJSON(w, f.Stats()[shard])
	})
	mux.HandleFunc("GET /image/{shard}", func(w http.ResponseWriter, r *http.Request) {
		v, err := strconv.ParseInt(r.PathValue("shard"), 10, 64)
		if err != nil || v < 0 || int(v) >= f.Shards() {
			http.Error(w, "bad shard", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := f.SaveImage(int(v), w); err != nil {
			// Headers are out; the truncated body fails the client's decode.
			fmt.Fprintf(w, "\nimage save failed: %v\n", err)
		}
	})
	return mux
}

// writeFleetErr maps fleet errors onto the serving contract: refusals while
// a shard recovers are 503 (retryable, load balancers fail over), execution
// traps are 500.
func writeFleetErr(w http.ResponseWriter, err error) {
	var ue *fleet.UnavailableError
	if errors.As(err, &ue) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

func pathKey(w http.ResponseWriter, r *http.Request) (int64, bool) {
	key, err := strconv.ParseInt(r.PathValue("key"), 10, 64)
	if err != nil {
		http.Error(w, "bad key: "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return key, true
}

func queryInt(w http.ResponseWriter, r *http.Request, name string) (int64, bool) {
	v, err := strconv.ParseInt(r.URL.Query().Get(name), 10, 64)
	if err != nil {
		http.Error(w, "bad "+name+": "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

func shardArg(w http.ResponseWriter, r *http.Request, f *fleet.Fleet) (int, bool) {
	v, ok := queryInt(w, r, "shard")
	if !ok {
		return 0, false
	}
	if v < 0 || int(v) >= f.Shards() {
		http.Error(w, fmt.Sprintf("shard %d out of range (fleet has %d)", v, f.Shards()),
			http.StatusBadRequest)
		return 0, false
	}
	return int(v), true
}

// bodyValue reads the int64 payload of a PUT: the request body, or ?v= as
// the curl-friendly fallback.
func bodyValue(r *http.Request) (int64, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64))
	if err != nil {
		return 0, err
	}
	s := strings.TrimSpace(string(body))
	if s == "" {
		s = r.URL.Query().Get("v")
	}
	if s == "" {
		return 0, errors.New("missing value (body or ?v=)")
	}
	return strconv.ParseInt(s, 10, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}
