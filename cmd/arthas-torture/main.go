// Command arthas-torture sweeps every crash point of a PML workload: it
// enumerates the workload's durability events (persists, transaction-commit
// ranges, allocator/root metadata updates), injects a crash at each one —
// including torn multi-word flushes — and drives the full recovery path
// (image save + reopen, open-time allocator recovery, checkpoint-log and
// flight-recorder parsing, the program's recovery function, and reactor
// mitigation for anything that still fails), checking invariants after
// every step. Failing schedules are shrunk to minimal replayable seeds.
//
// Usage:
//
//	arthas-torture [-seed N] [-points N] [-workers N] [-depth N]
//	               [-recover FN] [-probe "fn args"] [-torn=false]
//	               [-replay seed.json] [-o report.json] [-opt]
//	               file.pml "init_; put 1 2; get 1"
//
// Output is a JSON report that is byte-identical for a given -seed, across
// runs and across -workers values. The process exits nonzero when any
// trial ends in an invariant violation.
//
// -replay runs a single saved seed (the testdata/torture format) instead
// of a sweep — the regression path for shrunk schedules.
//
// -opt first proves durability equivalence — every enumerated crash point
// of the flush/fence-optimized build must recover to the identical durable
// image under both the optimized and unoptimized stacks (exit 1 and an
// arthas-equiv/v1 report on any mismatch) — then runs the sweep on the
// optimized program.
//
// -media switches to the media-fault sweep: instead of crashing at each
// durability event, the harness corrupts the durable image there (bit
// flips, stuck words, stray writes, block poison — docs/MEDIA_FAULTS.md)
// and verifies the scrubber heals it through both the in-process
// scrub-then-retry path and the image reopen path. -imagedir additionally
// saves each trial's still-corrupt image for offline tooling
// (arthas-inspect scrub) and the CI media job.
//
// -repl switches to the replication sweep (docs/REPLICATION.md): the
// workload runs on a primary streaming its checkpoint log to a standby
// replica, and the harness kills the primary at every durability event
// (torn tails included), cuts the stream mid-record at every shipped
// sequence number, and kills the replica at every applied one — each trial
// must converge back to word-identical primary and replica durable images
// with zero residual lag.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"arthas/internal/torture"
)

func main() {
	seed := flag.Int64("seed", 1, "PRNG seed for schedule sampling")
	points := flag.Int("points", 0, "max crash schedules to run (0 = all enumerated points)")
	workers := flag.Int("workers", 1, "parallel trials (report is identical at any value)")
	depth := flag.Int("depth", 1, "crashes per schedule (2 adds crash-during-recovery-rerun schedules)")
	torn := flag.Bool("torn", true, "include torn variants of multi-word durability events")
	recoverFn := flag.String("recover", "", "recovery function run after each reopen")
	probe := flag.String("probe", "", "single call checked (and used as the mitigation re-execution script) after recovery")
	replay := flag.String("replay", "", "replay one saved seed JSON instead of sweeping")
	media := flag.Bool("media", false, "sweep media faults instead of crash points")
	replMode := flag.Bool("repl", false, "sweep replication failures (primary crash, stream cut, replica kill) instead of crash points")
	imageDir := flag.String("imagedir", "", "with -media: save each trial's corrupt image here")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	optimize := flag.Bool("opt", false, "run the flush/fence-elimination pass on the program, prove per-crash-point recovery equivalence against the unoptimized build, then sweep the optimized program")
	flag.Parse()

	if *replay != "" {
		if flag.NArg() != 1 {
			usage()
		}
		os.Exit(runReplay(flag.Arg(0), *replay, *out))
	}
	if flag.NArg() != 2 {
		usage()
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *media {
		os.Exit(runMedia(torture.Config{
			Name:      flag.Arg(0),
			Source:    string(src),
			Script:    flag.Arg(1),
			RecoverFn: *recoverFn,
			Probe:     *probe,
			Seed:      *seed,
			Points:    *points,
			Workers:   *workers,
		}, *imageDir, *out))
	}
	if *replMode {
		os.Exit(runRepl(torture.Config{
			Name:      flag.Arg(0),
			Source:    string(src),
			Script:    flag.Arg(1),
			RecoverFn: *recoverFn,
			Probe:     *probe,
			Seed:      *seed,
			Points:    *points,
			Workers:   *workers,
			Torn:      *torn,
		}, *out))
	}
	cfg := torture.Config{
		Name:      flag.Arg(0),
		Source:    string(src),
		Script:    flag.Arg(1),
		RecoverFn: *recoverFn,
		Probe:     *probe,
		Seed:      *seed,
		Points:    *points,
		Workers:   *workers,
		Depth:     *depth,
		Torn:      *torn,
		Shrink:    true,
		Optimize:  *optimize,
	}
	if *optimize {
		eq, err := torture.RunEquivalence(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: equivalence: %d trials, %d matched, %d skipped, final %v; %s\n",
			flag.Arg(0), eq.Trials, eq.Matched, eq.Skipped, eq.FinalMatch, eq.OptStats)
		if !eq.OK() {
			js, jerr := eq.JSON()
			if jerr != nil {
				fatal(jerr)
			}
			emit(js, *out)
			fmt.Fprintln(os.Stderr, "durability equivalence VIOLATED; optimized sweep not run")
			os.Exit(1)
		}
	}
	rep, err := torture.Run(cfg)
	if err != nil {
		fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	emit(js, *out)
	fmt.Fprintf(os.Stderr, "%s: %d events, %d trials: %d clean, %d healed, %d violated\n",
		flag.Arg(0), rep.Events, rep.Trials, rep.Clean, rep.Healed, rep.Violated)
	if rep.Violated > 0 {
		os.Exit(1)
	}
}

func runMedia(cfg torture.Config, imageDir, out string) int {
	rep, err := torture.RunMedia(cfg, imageDir)
	if err != nil {
		fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	emit(js, out)
	fmt.Fprintf(os.Stderr, "%s: media sweep: %d events, %d trials: %d clean, %d healed, %d violated\n",
		cfg.Name, rep.Events, rep.Trials, rep.Clean, rep.Healed, rep.Violated)
	if rep.Violated > 0 {
		return 1
	}
	return 0
}

func runRepl(cfg torture.Config, out string) int {
	rep, err := torture.RunRepl(cfg)
	if err != nil {
		fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	emit(js, out)
	fmt.Fprintf(os.Stderr, "%s: repl sweep: %d events, %d records, %d trials: %d clean, %d healed, %d violated\n",
		cfg.Name, rep.Events, rep.Records, rep.Trials, rep.Clean, rep.Healed, rep.Violated)
	if rep.Violated > 0 {
		return 1
	}
	return 0
}

func runReplay(pmlPath, seedPath, out string) int {
	src, err := os.ReadFile(pmlPath)
	if err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(seedPath)
	if err != nil {
		fatal(err)
	}
	var seed torture.Seed
	if err := json.Unmarshal(data, &seed); err != nil {
		fatal(fmt.Errorf("%s: %w", seedPath, err))
	}
	res, err := torture.Replay(string(src), seed)
	if err != nil {
		fatal(err)
	}
	js, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	emit(js, out)
	fmt.Fprintf(os.Stderr, "%s: %s\n", seedPath, res.Outcome)
	if res.Outcome == "violated" {
		return 1
	}
	return 0
}

func emit(js []byte, out string) {
	js = append(js, '\n')
	if out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(out, js, 0o644); err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: arthas-torture [-seed N] [-points N] [-workers N] [-depth N] [-recover FN] [-probe "fn args"] [-torn=false] [-o report.json] [-opt] file.pml "init_; put 1 2; get 1"
       arthas-torture -media [-imagedir DIR] [common flags] file.pml "script"
       arthas-torture -repl [common flags] file.pml "script"
       arthas-torture -replay seed.json file.pml`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
