package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"arthas"
	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
)

// rewriteImage must preserve the container kind: a bare pool file stays a
// bare pool file, a full image keeps its checkpoint-log and trace sections.

func newTestPool(t *testing.T) *pmem.Pool {
	t.Helper()
	p := pmem.New(1 << 12)
	addr, err := p.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.Store(addr+uint64(i), 0x1000+uint64(i))
	}
	if err := p.Persist(addr, 8); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRewriteImageBarePoolStaysBare(t *testing.T) {
	p := newTestPool(t)
	path := filepath.Join(t.TempDir(), "bare.pool")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pool, log, tr, readErr := arthas.ReadAnyImage(rf)
	rf.Close()
	if readErr != nil || log != nil || tr != nil {
		t.Fatalf("bare pool open: log=%v tr=%v err=%v", log, tr, readErr)
	}
	if err := rewriteImage(path, pool, log, tr, readErr); err != nil {
		t.Fatal(err)
	}

	rf2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf2.Close()
	pool2, log2, tr2, err := arthas.ReadAnyImage(rf2)
	if err != nil {
		t.Fatal(err)
	}
	if log2 != nil || tr2 != nil {
		t.Fatal("bare pool file grew image sections on rewrite")
	}
	if pool2.Words() != pool.Words() {
		t.Fatalf("pool size changed: %d -> %d", pool.Words(), pool2.Words())
	}
	if merr := pool2.VerifyMedia(); merr != nil {
		t.Fatalf("rewritten pool media-unclean: %v", merr)
	}
}

func TestRewriteImageFullImageKeepsSections(t *testing.T) {
	p := newTestPool(t)
	log := checkpoint.NewLog(3)
	path := filepath.Join(t.TempDir(), "full.img")
	var buf bytes.Buffer
	if err := arthas.WriteImage(&buf, p, log, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pool, rlog, tr, readErr := arthas.ReadAnyImage(rf)
	rf.Close()
	if readErr != nil || rlog == nil {
		t.Fatalf("full image open: log=%v err=%v", rlog, readErr)
	}
	if err := rewriteImage(path, pool, rlog, tr, readErr); err != nil {
		t.Fatal(err)
	}

	rf2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf2.Close()
	_, log2, tr2, err := arthas.ReadAnyImage(rf2)
	if err != nil {
		t.Fatal(err)
	}
	if log2 == nil || tr2 == nil {
		t.Fatal("full image lost its log/trace sections on rewrite")
	}
}
