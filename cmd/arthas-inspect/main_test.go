package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arthas"
	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
)

// rewriteImage must preserve the container kind: a bare pool file stays a
// bare pool file, a full image keeps its checkpoint-log and trace sections.

func newTestPool(t *testing.T) *pmem.Pool {
	t.Helper()
	p := pmem.New(1 << 12)
	addr, err := p.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.Store(addr+uint64(i), 0x1000+uint64(i))
	}
	if err := p.Persist(addr, 8); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRewriteImageBarePoolStaysBare(t *testing.T) {
	p := newTestPool(t)
	path := filepath.Join(t.TempDir(), "bare.pool")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pool, log, tr, readErr := arthas.ReadAnyImage(rf)
	rf.Close()
	if readErr != nil || log != nil || tr != nil {
		t.Fatalf("bare pool open: log=%v tr=%v err=%v", log, tr, readErr)
	}
	if err := rewriteImage(path, pool, log, tr, readErr); err != nil {
		t.Fatal(err)
	}

	rf2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf2.Close()
	pool2, log2, tr2, err := arthas.ReadAnyImage(rf2)
	if err != nil {
		t.Fatal(err)
	}
	if log2 != nil || tr2 != nil {
		t.Fatal("bare pool file grew image sections on rewrite")
	}
	if pool2.Words() != pool.Words() {
		t.Fatalf("pool size changed: %d -> %d", pool.Words(), pool2.Words())
	}
	if merr := pool2.VerifyMedia(); merr != nil {
		t.Fatalf("rewritten pool media-unclean: %v", merr)
	}
}

func TestRewriteImageFullImageKeepsSections(t *testing.T) {
	p := newTestPool(t)
	log := checkpoint.NewLog(3)
	path := filepath.Join(t.TempDir(), "full.img")
	var buf bytes.Buffer
	if err := arthas.WriteImage(&buf, p, log, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pool, rlog, tr, readErr := arthas.ReadAnyImage(rf)
	rf.Close()
	if readErr != nil || rlog == nil {
		t.Fatalf("full image open: log=%v err=%v", rlog, readErr)
	}
	if err := rewriteImage(path, pool, rlog, tr, readErr); err != nil {
		t.Fatal(err)
	}

	rf2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf2.Close()
	_, log2, tr2, err := arthas.ReadAnyImage(rf2)
	if err != nil {
		t.Fatal(err)
	}
	if log2 == nil || tr2 == nil {
		t.Fatal("full image lost its log/trace sections on rewrite")
	}
}

// replDiverged is the offline replication identity oracle: identical durable
// images with a trailing (or equal) replica log pass; any differing word, a
// replica log ahead of its primary, or mismatched pool sizes fail.
func TestReplDiverged(t *testing.T) {
	// mk builds a pool+log pair with identical durable contents; extra
	// re-persists of the same value advance the log seq without changing a
	// durable word, modelling a primary ahead of its replica.
	mk := func(extra int) (*pmem.Pool, *checkpoint.Log, uint64) {
		p := pmem.New(1 << 12)
		log := checkpoint.NewLog(3)
		p.SetHooks(log.Hooks())
		addr, err := p.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			p.Store(addr+uint64(i), 0x1000+uint64(i))
		}
		if err := p.Persist(addr, 8); err != nil {
			t.Fatal(err)
		}
		for e := 0; e < extra; e++ {
			p.Store(addr, 0x1000)
			if err := p.Persist(addr, 1); err != nil {
				t.Fatal(err)
			}
		}
		return p, log, addr
	}

	pri, priLog, _ := mk(1)
	rep, repLog, addr := mk(0)
	var out bytes.Buffer
	if replDiverged(&out, pri, priLog, rep, repLog, 16) {
		t.Fatalf("identical images reported divergent:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "checkpoint lag: 1 records") ||
		!strings.Contains(out.String(), "durable images identical") {
		t.Fatalf("unexpected report:\n%s", out.String())
	}

	// Replica log ahead of the primary: ordering violation even with
	// identical durable words.
	out.Reset()
	_, aheadLog, _ := mk(2)
	if !replDiverged(&out, pri, priLog, rep, aheadLog, 16) {
		t.Fatalf("replica-ahead not flagged:\n%s", out.String())
	}

	// One flipped durable word: divergence, diff listed.
	out.Reset()
	v, err := rep.Load(addr)
	if err != nil {
		t.Fatal(err)
	}
	rep.Store(addr, v^0x40)
	if err := rep.Persist(addr, 1); err != nil {
		t.Fatal(err)
	}
	if !replDiverged(&out, pri, priLog, rep, repLog, 16) {
		t.Fatalf("flipped word not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "diverge at 1 of") {
		t.Fatalf("diff not reported:\n%s", out.String())
	}

	// Mismatched pool sizes fail outright.
	out.Reset()
	if !replDiverged(&out, pri, priLog, pmem.New(1<<8), repLog, 16) {
		t.Fatal("size mismatch not flagged")
	}
}
