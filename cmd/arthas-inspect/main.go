// Command arthas-inspect is the pool forensics tool: it opens a pool or
// image file written by arthas-run / arthas-react (or SavePool/SaveImage)
// WITHOUT booting a runtime, so corrupt and half-written images can still
// be examined post-mortem — the pmempool info/check analogue for this
// repo's pool format.
//
// Usage:
//
//	arthas-inspect info        image    header, roots, allocator + op stats
//	arthas-inspect checkpoints image    checkpoint-log version table
//	arthas-inspect flight [-jsonl] image   crash-surviving flight-recorder tail
//	arthas-inspect verify      image    structural checks; exit 1 on corruption
//
// The image argument accepts both full images (pool + checkpoint log +
// trace, as saved by -poolfile) and bare pool files. See
// docs/OBSERVABILITY.md for a worked post-mortem example.
package main

import (
	"flag"
	"fmt"
	"os"

	"arthas"
	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
	"arthas/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: arthas-inspect COMMAND [flags] IMAGE

commands:
  info         header, roots, allocator stats, dirty/durable word counts
  checkpoints  checkpoint-log version table
  flight       flight-recorder event tail (-jsonl for machine-readable)
  verify       structural integrity checks; exits nonzero on corruption`)
	os.Exit(2)
}

// open reads the image leniently. Damaged metadata degrades to a warning so
// every subcommand can still report on whatever sections survived; the read
// error is returned so `verify` can treat it as corruption.
func open(path string) (*pmem.Pool, *checkpoint.Log, *trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	pool, log, tr, err := arthas.ReadAnyImage(f)
	if pool == nil {
		fmt.Fprintf(os.Stderr, "arthas-inspect: %s: %v\n", path, err)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: %s: %v\n", path, err)
	}
	return pool, log, tr, err
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch cmd := os.Args[1]; cmd {
	case "info":
		pool, log, tr, _ := openArgs(cmd, flag.NewFlagSet(cmd, flag.ExitOnError), os.Args[2:])
		cmdInfo(pool, log, tr)
	case "checkpoints":
		_, log, _, _ := openArgs(cmd, flag.NewFlagSet(cmd, flag.ExitOnError), os.Args[2:])
		cmdCheckpoints(log)
	case "flight":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		jsonl := fs.Bool("jsonl", false, "emit events as JSONL instead of a timeline")
		pool, _, _, _ := openArgs(cmd, fs, os.Args[2:])
		cmdFlight(pool, *jsonl)
	case "verify":
		pool, log, _, readErr := openArgs(cmd, flag.NewFlagSet(cmd, flag.ExitOnError), os.Args[2:])
		cmdVerify(pool, log, readErr)
	default:
		usage()
	}
}

func openArgs(cmd string, fs *flag.FlagSet, args []string) (*pmem.Pool, *checkpoint.Log, *trace.Trace, error) {
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: arthas-inspect %s [flags] IMAGE\n", cmd)
		os.Exit(2)
	}
	return open(fs.Arg(0))
}

func cmdInfo(pool *pmem.Pool, log *checkpoint.Log, tr *trace.Trace) {
	info := pool.Info()
	fmt.Printf("pool format:     v%d\n", info.FormatVersion)
	fmt.Printf("pool size:       %d words\n", info.Words)
	fmt.Printf("heap used:       %d words\n", info.HeapUsed)
	fmt.Printf("live payload:    %d words in %d blocks\n", info.LiveWords, info.LiveBlocks)
	fmt.Printf("free:            %d words, %d free-list blocks\n", info.FreeWords, info.FreeBlocks)
	fmt.Printf("nonzero words:   %d\n", info.NonzeroWords)
	fmt.Printf("dirty words:     %d (stored but never persisted)\n", info.DirtyWords)
	fmt.Println("roots:")
	any := false
	for i, r := range info.Roots {
		if r != 0 {
			fmt.Printf("  [%2d] %#x\n", i, r)
			any = true
		}
	}
	if !any {
		fmt.Println("  (all zero)")
	}
	s := info.Stats
	fmt.Println("op stats (lifetime, saved with v2 pools):")
	fmt.Printf("  loads=%d stores=%d persists=%d persisted_words=%d\n",
		s.Loads, s.Stores, s.Persists, s.PersistedWords.Words)
	fmt.Printf("  allocs=%d frees=%d crashes=%d\n", s.Allocs, s.Frees, s.Crashes)
	if log != nil {
		fmt.Printf("checkpoint log:  %d entries, %d versions recorded, seq=%d\n",
			log.NumEntries(), log.TotalVersions(), log.Seq())
	} else {
		fmt.Println("checkpoint log:  none (bare pool file)")
	}
	if tr != nil {
		fmt.Printf("address trace:   %d events, %d flushes\n", tr.Len(), tr.Flushes())
	} else {
		fmt.Println("address trace:   none (bare pool file)")
	}
	if fl := pool.Flight(); fl != nil {
		fmt.Printf("flight recorder: %d/%d events held (%d total recorded)\n",
			fl.Len(), fl.Cap(), fl.TotalEvents())
	} else {
		fmt.Println("flight recorder: none (v1 pool or flight disabled)")
	}
}

func cmdCheckpoints(log *checkpoint.Log) {
	if log == nil {
		fmt.Fprintln(os.Stderr, "no checkpoint section (bare pool file)")
		os.Exit(1)
	}
	entries := log.Entries()
	fmt.Printf("checkpoint log: seq=%d entries=%d versions_recorded=%d reverted=%d\n",
		log.Seq(), len(entries), log.TotalVersions(), log.RevertedVersions())
	if len(entries) > 0 {
		fmt.Printf("%-12s %-6s %-9s %-9s %s\n", "ADDR", "WORDS", "VERSIONS", "LIVE-SEQ", "STATE")
		for _, e := range entries {
			state := "live"
			liveSeq := "-"
			if lv := e.LiveVersion(); lv != nil {
				liveSeq = fmt.Sprintf("%d", lv.Seq)
			} else if e.Dead() {
				state = "dead"
			} else {
				state = "reverted"
			}
			fmt.Printf("%-12s %-6d %-9d %-9s %s\n", fmt.Sprintf("%#x", e.Addr), e.Words, len(e.Versions), liveSeq, state)
		}
	}
	allocs := log.AllocRecords()
	if len(allocs) > 0 {
		freed, reallocs := 0, 0
		for _, a := range allocs {
			if a.Freed {
				freed++
			}
			if a.Realloc {
				reallocs++
			}
		}
		fmt.Printf("allocations: %d recorded, %d freed, %d reallocs\n", len(allocs), freed, reallocs)
	}
}

func cmdFlight(pool *pmem.Pool, jsonl bool) {
	fl := pool.Flight()
	if fl == nil {
		fmt.Fprintln(os.Stderr, "no flight-recorder section (v1 pool, or run with -flight 0)")
		os.Exit(1)
	}
	var err error
	if jsonl {
		err = fl.WriteJSONL(os.Stdout)
	} else {
		err = fl.WriteTimeline(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// cmdVerify runs the full structural check battery and exits nonzero on ANY
// damage: unreadable/truncated durable metadata sections (readErr from the
// lenient open), allocator metadata that open-time recovery cannot repair,
// a pool that fails CheckIntegrity after that repair, or a checkpoint log
// that fails Validate. Repairable crash windows (a power failure between
// allocator metadata persists) are reported but are NOT corruption — the
// real open path heals them, and verify mirrors it.
func cmdVerify(pool *pmem.Pool, log *checkpoint.Log, readErr error) {
	bad := false
	if readErr != nil {
		fmt.Printf("FAIL: image metadata unreadable: %v\n", readErr)
		bad = true
	}
	rec := pool.RecoverMeta()
	if !rec.OK() {
		fmt.Printf("FAIL: allocator metadata unrecoverable: %v\n", rec)
		bad = true
	} else if !rec.Clean() {
		fmt.Printf("note: allocator crash window repaired by open-time recovery: %v\n", rec)
	}
	report := pool.CheckIntegrity()
	fmt.Println(report.String())
	if !report.OK() {
		bad = true
	}
	if log != nil {
		if lrep := log.Validate(); !lrep.OK() {
			fmt.Printf("FAIL: checkpoint log invalid: %v\n", lrep)
			bad = true
		} else {
			fmt.Printf("checkpoint log OK: %d entries, %d versions, seq=%d\n",
				log.NumEntries(), log.TotalVersions(), log.Seq())
		}
	}
	info := pool.Info()
	if info.DirtyWords > 0 {
		fmt.Printf("note: %d dirty words — image saved without a final persist\n", info.DirtyWords)
	}
	if bad {
		os.Exit(1)
	}
}
