// Command arthas-inspect is the pool forensics tool: it opens a pool or
// image file written by arthas-run / arthas-react (or SavePool/SaveImage)
// WITHOUT booting a runtime, so corrupt and half-written images can still
// be examined post-mortem — the pmempool info/check analogue for this
// repo's pool format.
//
// Usage:
//
//	arthas-inspect info        image    header, roots, allocator + op stats
//	arthas-inspect checkpoints image    checkpoint-log version table
//	arthas-inspect flight [-jsonl] image   crash-surviving flight-recorder tail
//	arthas-inspect verify [-repair] image  structural + media checks; exit 1 on corruption
//	arthas-inspect scrub [-json] [-repair] image   media scrub: scan or heal
//	arthas-inspect incident [-json] report.json    incident-report timeline
//	arthas-inspect repl [-max N] primary replica   replica divergence check; exit 1 on divergence
//
// The image argument accepts both full images (pool + checkpoint log +
// trace, as saved by -poolfile) and bare pool files. See
// docs/OBSERVABILITY.md for a worked post-mortem example and
// docs/MEDIA_FAULTS.md for the scrub/repair semantics.
//
// `scrub` is the offline face of the online scrubber: without -repair it
// scans seals read-only and exits nonzero when any block's checksum is
// broken; with -repair it heals from the image's own checkpoint log
// (quarantining what it cannot prove restored) and rewrites the image file
// in place — full images stay full images, bare pool files stay bare.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"arthas"
	"arthas/internal/checkpoint"
	"arthas/internal/pmem"
	"arthas/internal/provenance"
	"arthas/internal/scrub"
	"arthas/internal/trace"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: arthas-inspect COMMAND [flags] IMAGE

commands:
  info         header, roots, allocator stats, dirty/durable word counts
  checkpoints  checkpoint-log version table
  flight       flight-recorder event tail (-jsonl for machine-readable)
  verify       structural + media integrity checks; exits nonzero on corruption
               (-repair heals media corruption from the checkpoint log and
               rewrites the image before the structural checks run)
  scrub        media-checksum scrub (-json for the arthas-scrub/v1 report;
               -repair heals and rewrites the image in place)
  incident     render an arthas-incident/v1 report (from arthas-react
               -incident) as a human timeline (-json re-emits the JSON)
  repl         compare a primary image against its replica: checkpoint-log
               lag, then word-by-word durable-image identity (-max N caps
               the printed diff); exits nonzero on divergence or a replica
               ahead of its primary`)
	os.Exit(2)
}

// open reads the image leniently. Damaged metadata degrades to a warning so
// every subcommand can still report on whatever sections survived; the read
// error is returned so `verify` can treat it as corruption.
func open(path string) (*pmem.Pool, *checkpoint.Log, *trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	pool, log, tr, err := arthas.ReadAnyImage(f)
	if pool == nil {
		fmt.Fprintf(os.Stderr, "arthas-inspect: %s: %v\n", path, err)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: %s: %v\n", path, err)
	}
	return pool, log, tr, err
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch cmd := os.Args[1]; cmd {
	case "info":
		pool, log, tr, _ := openArgs(cmd, flag.NewFlagSet(cmd, flag.ExitOnError), os.Args[2:])
		cmdInfo(pool, log, tr)
	case "checkpoints":
		_, log, _, _ := openArgs(cmd, flag.NewFlagSet(cmd, flag.ExitOnError), os.Args[2:])
		cmdCheckpoints(log)
	case "flight":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		jsonl := fs.Bool("jsonl", false, "emit events as JSONL instead of a timeline")
		pool, _, _, _ := openArgs(cmd, fs, os.Args[2:])
		cmdFlight(pool, *jsonl)
	case "verify":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		repair := fs.Bool("repair", false, "heal media corruption from the checkpoint log and rewrite the image")
		pool, log, tr, readErr := openArgs(cmd, fs, os.Args[2:])
		cmdVerify(fs.Arg(0), pool, log, tr, readErr, *repair)
	case "scrub":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		jsonOut := fs.Bool("json", false, "emit the arthas-scrub/v1 JSON report instead of a summary")
		repair := fs.Bool("repair", false, "heal corruption and rewrite the image in place")
		pool, log, tr, readErr := openArgs(cmd, fs, os.Args[2:])
		cmdScrub(fs.Arg(0), pool, log, tr, readErr, *jsonOut, *repair)
	case "incident":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		jsonOut := fs.Bool("json", false, "re-emit the validated arthas-incident/v1 JSON instead of a timeline")
		fs.Parse(os.Args[2:]) //nolint:errcheck // ExitOnError
		if fs.NArg() != 1 {
			fmt.Fprintf(os.Stderr, "usage: arthas-inspect incident [-json] REPORT.json\n")
			os.Exit(2)
		}
		cmdIncident(fs.Arg(0), *jsonOut)
	case "repl":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		maxDiff := fs.Int("max", 16, "max differing words to print")
		fs.Parse(os.Args[2:]) //nolint:errcheck // ExitOnError
		if fs.NArg() != 2 {
			fmt.Fprintf(os.Stderr, "usage: arthas-inspect repl [-max N] PRIMARY_IMAGE REPLICA_IMAGE\n")
			os.Exit(2)
		}
		cmdRepl(fs.Arg(0), fs.Arg(1), *maxDiff)
	default:
		usage()
	}
}

// cmdRepl is the offline face of the replication identity oracle
// (docs/REPLICATION.md): after a failover drill or a shipped catch-up, the
// primary's and the replica's durable images must be word-identical and the
// replica's checkpoint log may trail but never lead. Divergence here means
// the stream protocol lost or invented a write — the same check the -repl
// torture sweep runs in-process, made runnable against downloaded images
// (arthas-serve GET /image/N).
func cmdRepl(primaryPath, replicaPath string, maxDiff int) {
	pri, priLog, _, priErr := open(primaryPath)
	rep, repLog, _, repErr := open(replicaPath)
	bad := priErr != nil || repErr != nil
	if bad {
		fmt.Println("FAIL: image metadata unreadable (see warnings above)")
	}
	if replDiverged(os.Stdout, pri, priLog, rep, repLog, maxDiff) || bad {
		os.Exit(1)
	}
}

// replDiverged runs the comparison and reports true on any failure: a
// replica log ahead of its primary, mismatched pool sizes, or any differing
// durable word.
func replDiverged(w io.Writer, pri *pmem.Pool, priLog *checkpoint.Log, rep *pmem.Pool, repLog *checkpoint.Log, maxDiff int) bool {
	bad := false
	var priSeq, repSeq uint64
	if priLog != nil {
		priSeq = priLog.Seq()
	}
	if repLog != nil {
		repSeq = repLog.Seq()
	}
	switch {
	case priLog == nil || repLog == nil:
		fmt.Fprintln(w, "checkpoint lag: unknown (bare pool file without a log section)")
	case repSeq > priSeq:
		fmt.Fprintf(w, "FAIL: replica log ahead of primary: seq %d vs %d (wrong image order, or the replica was promoted)\n",
			repSeq, priSeq)
		bad = true
	default:
		fmt.Fprintf(w, "checkpoint lag: %d records (primary seq=%d, replica seq=%d)\n",
			priSeq-repSeq, priSeq, repSeq)
	}

	pimg, rimg := pri.DurableImage(), rep.DurableImage()
	if len(pimg) != len(rimg) {
		fmt.Fprintf(w, "FAIL: pool sizes differ: %d vs %d words\n", len(pimg), len(rimg))
		return true
	}
	diff := 0
	for addr := range pimg {
		if pimg[addr] == rimg[addr] {
			continue
		}
		if diff < maxDiff {
			fmt.Fprintf(w, "  word %#x: primary %#x, replica %#x\n", addr, pimg[addr], rimg[addr])
		}
		diff++
	}
	if diff > 0 {
		if diff > maxDiff {
			fmt.Fprintf(w, "  ... and %d more\n", diff-maxDiff)
		}
		fmt.Fprintf(w, "FAIL: durable images diverge at %d of %d words\n", diff, len(pimg))
		return true
	}
	fmt.Fprintf(w, "durable images identical: %d words\n", len(pimg))
	return bad
}

// cmdIncident renders an incident report written by `arthas-react -incident`
// (or faults.RunArthas with Provenance). Unlike the image subcommands it
// reads a JSON file, not a pool: incidents are serialized next to the image,
// not inside it.
func cmdIncident(path string, jsonOut bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	inc, err := provenance.DecodeIncident(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arthas-inspect: %s: %v\n", path, err)
		os.Exit(1)
	}
	if jsonOut {
		os.Stdout.Write(inc.JSON())
		return
	}
	fmt.Print(inc.Text())
}

func openArgs(cmd string, fs *flag.FlagSet, args []string) (*pmem.Pool, *checkpoint.Log, *trace.Trace, error) {
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: arthas-inspect %s [flags] IMAGE\n", cmd)
		os.Exit(2)
	}
	return open(fs.Arg(0))
}

func cmdInfo(pool *pmem.Pool, log *checkpoint.Log, tr *trace.Trace) {
	info := pool.Info()
	fmt.Printf("pool format:     v%d\n", info.FormatVersion)
	fmt.Printf("pool size:       %d words\n", info.Words)
	fmt.Printf("heap used:       %d words\n", info.HeapUsed)
	fmt.Printf("live payload:    %d words in %d blocks\n", info.LiveWords, info.LiveBlocks)
	fmt.Printf("free:            %d words, %d free-list blocks\n", info.FreeWords, info.FreeBlocks)
	fmt.Printf("nonzero words:   %d\n", info.NonzeroWords)
	fmt.Printf("dirty words:     %d (stored but never persisted)\n", info.DirtyWords)
	fmt.Println("roots:")
	any := false
	for i, r := range info.Roots {
		if r != 0 {
			fmt.Printf("  [%2d] %#x\n", i, r)
			any = true
		}
	}
	if !any {
		fmt.Println("  (all zero)")
	}
	s := info.Stats
	fmt.Println("op stats (lifetime, saved with v2 pools):")
	fmt.Printf("  loads=%d stores=%d persists=%d persisted_words=%d\n",
		s.Loads, s.Stores, s.Persists, s.PersistedWords.Words)
	fmt.Printf("  allocs=%d frees=%d crashes=%d\n", s.Allocs, s.Frees, s.Crashes)
	if log != nil {
		fmt.Printf("checkpoint log:  %d entries, %d versions recorded, seq=%d\n",
			log.NumEntries(), log.TotalVersions(), log.Seq())
	} else {
		fmt.Println("checkpoint log:  none (bare pool file)")
	}
	if tr != nil {
		fmt.Printf("address trace:   %d events, %d flushes\n", tr.Len(), tr.Flushes())
	} else {
		fmt.Println("address trace:   none (bare pool file)")
	}
	if fl := pool.Flight(); fl != nil {
		fmt.Printf("flight recorder: %d/%d events held (%d total recorded)\n",
			fl.Len(), fl.Cap(), fl.TotalEvents())
	} else {
		fmt.Println("flight recorder: none (v1 pool or flight disabled)")
	}
}

func cmdCheckpoints(log *checkpoint.Log) {
	if log == nil {
		fmt.Fprintln(os.Stderr, "no checkpoint section (bare pool file)")
		os.Exit(1)
	}
	entries := log.Entries()
	fmt.Printf("checkpoint log: seq=%d entries=%d versions_recorded=%d reverted=%d\n",
		log.Seq(), len(entries), log.TotalVersions(), log.RevertedVersions())
	if len(entries) > 0 {
		fmt.Printf("%-12s %-6s %-9s %-9s %s\n", "ADDR", "WORDS", "VERSIONS", "LIVE-SEQ", "STATE")
		for _, e := range entries {
			state := "live"
			liveSeq := "-"
			if lv := e.LiveVersion(); lv != nil {
				liveSeq = fmt.Sprintf("%d", lv.Seq)
			} else if e.Dead() {
				state = "dead"
			} else {
				state = "reverted"
			}
			fmt.Printf("%-12s %-6d %-9d %-9s %s\n", fmt.Sprintf("%#x", e.Addr), e.Words, len(e.Versions), liveSeq, state)
		}
	}
	allocs := log.AllocRecords()
	if len(allocs) > 0 {
		freed, reallocs := 0, 0
		for _, a := range allocs {
			if a.Freed {
				freed++
			}
			if a.Realloc {
				reallocs++
			}
		}
		fmt.Printf("allocations: %d recorded, %d freed, %d reallocs\n", len(allocs), freed, reallocs)
	}
}

func cmdFlight(pool *pmem.Pool, jsonl bool) {
	fl := pool.Flight()
	if fl == nil {
		fmt.Fprintln(os.Stderr, "no flight-recorder section (v1 pool, or run with -flight 0)")
		os.Exit(1)
	}
	var err error
	if jsonl {
		err = fl.WriteJSONL(os.Stdout)
	} else {
		err = fl.WriteTimeline(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// cmdVerify runs the full check battery — media seals first, then structure
// — and exits nonzero on ANY damage: unreadable/truncated durable metadata
// sections (readErr from the lenient open), a media block whose checksum no
// longer matches its contents, allocator metadata that open-time recovery
// cannot repair, a pool that fails CheckIntegrity after that repair, or a
// checkpoint log that fails Validate. Repairable crash windows (a power
// failure between allocator metadata persists) are reported but are NOT
// corruption — the real open path heals them, and verify mirrors it.
// Quarantined blocks and a degraded header are likewise notes, not
// failures: a prior scrub already fenced them and the pool serves.
//
// With -repair, media corruption is healed through scrub.Repair (using the
// image's own checkpoint log as ground truth) and the image is rewritten
// before the structural checks run — the offline analogue of OpenImage's
// auto-heal path.
func cmdVerify(path string, pool *pmem.Pool, log *checkpoint.Log, tr *trace.Trace, readErr error, repair bool) {
	bad := false
	if readErr != nil {
		fmt.Printf("FAIL: image metadata unreadable: %v\n", readErr)
		bad = true
	}
	corrupt := pool.CorruptMediaBlocks()
	fmt.Printf("media checksums: %d blocks x %d words (pool format v%d)\n",
		pool.MediaBlocks(), pmem.MediaBlockWords, pool.FormatVersion())
	if pool.FormatVersion() < 3 && pool.FormatVersion() != 0 {
		fmt.Println("note: pre-v3 image carries no seals; checksums backfilled from the durable image")
	}
	switch {
	case len(corrupt) == 0:
		fmt.Println("media OK: every block seal matches its durable contents")
	case repair:
		rep := scrub.Repair(pool, log, nil)
		fmt.Println(rep.String())
		if !rep.Healthy() {
			fmt.Println("FAIL: media corruption unscrubbable")
			bad = true
		} else if err := rewriteImage(path, pool, log, tr, readErr); err != nil {
			fmt.Printf("FAIL: rewriting repaired image: %v\n", err)
			bad = true
		} else {
			fmt.Printf("repaired image rewritten: %s\n", path)
		}
	default:
		fmt.Printf("FAIL: media corruption: %d blocks with broken seals: %v (rerun with -repair to heal)\n",
			len(corrupt), corrupt)
		bad = true
	}
	if quar := pool.QuarantinedBlocks(); len(quar) > 0 {
		fmt.Printf("note: %d blocks quarantined by a prior scrub: %v\n", len(quar), quar)
	}
	if pool.MediaDegraded() {
		fmt.Println("note: pool is media-degraded (header block was unreconstructible)")
	}
	rec := pool.RecoverMeta()
	if !rec.OK() {
		fmt.Printf("FAIL: allocator metadata unrecoverable: %v\n", rec)
		bad = true
	} else if !rec.Clean() {
		fmt.Printf("note: allocator crash window repaired by open-time recovery: %v\n", rec)
	}
	report := pool.CheckIntegrity()
	fmt.Println(report.String())
	if !report.OK() {
		bad = true
	}
	if log != nil {
		if lrep := log.Validate(); !lrep.OK() {
			fmt.Printf("FAIL: checkpoint log invalid: %v\n", lrep)
			bad = true
		} else {
			fmt.Printf("checkpoint log OK: %d entries, %d versions, seq=%d\n",
				log.NumEntries(), log.TotalVersions(), log.Seq())
		}
	}
	info := pool.Info()
	if info.DirtyWords > 0 {
		fmt.Printf("note: %d dirty words — image saved without a final persist\n", info.DirtyWords)
	}
	if bad {
		os.Exit(1)
	}
}

// cmdScrub runs the media scrubber against an image file. Without -repair
// it is a read-only seal scan (exit 1 when any block is corrupt); with
// -repair it heals from the image's checkpoint log, and — when the pool
// comes out servable — rewrites the image in place so the healed words,
// reseals, and quarantine set become durable. An unscrubbable pool leaves
// the file untouched and exits 1.
func cmdScrub(path string, pool *pmem.Pool, log *checkpoint.Log, tr *trace.Trace, readErr error, jsonOut, repair bool) {
	var rep *scrub.Report
	if repair {
		rep = scrub.Repair(pool, log, nil)
	} else {
		rep = scrub.Scan(pool, nil)
	}
	if jsonOut {
		os.Stdout.Write(rep.JSON())
	} else {
		fmt.Println(rep.String())
		for _, b := range rep.Blocks {
			fmt.Printf("  block %d @ %#x+%d: %s (%d words repaired)\n",
				b.Block, b.Addr, b.Words, b.Verdict, b.RepairedWords)
		}
	}
	if repair && rep.Healthy() && rep.CorruptBlocks > 0 {
		if err := rewriteImage(path, pool, log, tr, readErr); err != nil {
			fmt.Fprintf(os.Stderr, "arthas-inspect: rewriting %s: %v\n", path, err)
			os.Exit(1)
		}
		if !jsonOut {
			fmt.Printf("repaired image rewritten: %s\n", path)
		}
	}
	if !rep.Healthy() {
		os.Exit(1)
	}
}

// rewriteImage writes the (scrubbed) pool back to path, preserving the
// container kind it was opened from: a full image keeps its checkpoint log
// and trace sections (damaged sections — readErr non-nil — are rewritten
// empty rather than propagated), a bare pool file stays a bare pool file.
// The write goes through a temp file + rename so a failure mid-write never
// destroys the original.
func rewriteImage(path string, pool *pmem.Pool, log *checkpoint.Log, tr *trace.Trace, readErr error) error {
	tmp := path + ".scrub-tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	barePool := log == nil && tr == nil && readErr == nil
	if barePool {
		_, err = pool.WriteTo(f)
	} else {
		err = arthas.WriteImage(f, pool, log, tr)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
