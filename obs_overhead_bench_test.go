package arthas

// Benchmarks guarding the zero-cost-disabled observability claim: the same
// Figure-12-style workload (Memcached, YCSB-A) runs with no sink, with the
// explicit no-op sink, and with a live Recorder. The first two must be
// indistinguishable — every hot path branches on a cached enabled bool, so
// disabled observability costs one predicted branch per event site (<2% on
// BenchmarkFig12Overhead*). The Recorder leg shows what enabling costs.
//
//	go test -bench 'BenchmarkObs' -benchtime 3x .

import (
	"testing"

	"arthas/internal/obs"
	"arthas/internal/systems"
	"arthas/internal/workload"
)

func benchObsWorkload(b *testing.B, sink obs.Sink) {
	b.Helper()
	sys := systems.Memcached()
	sys.PoolWords = 1 << 21
	ops := workload.Generate(workload.WorkloadA(10_000, 1000, 42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := systems.Deploy(sys, systems.DeployOpts{
			Checkpoint: true, Trace: true, StepLimit: 1 << 40, Obs: sink,
		})
		if err != nil {
			b.Fatal(err)
		}
		runner := &workload.Runner{
			Read:   func(k int64) error { _, tp := d.Call("mc_get", k); _ = tp; return nil },
			Update: func(k, v int64) error { _, tp := d.Call("mc_set", k, v, 2); _ = tp; return nil },
			Insert: func(k, v int64) error { _, tp := d.Call("mc_set", k, v, 2); _ = tp; return nil },
			Delete: func(k int64) error { _, tp := d.Call("mc_delete", k); _ = tp; return nil },
		}
		b.StartTimer()
		if _, err := runner.Run(ops); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ops)), "ops/iter")
}

func BenchmarkObsDisabled(b *testing.B) { benchObsWorkload(b, nil) }

func BenchmarkObsNopSink(b *testing.B) { benchObsWorkload(b, obs.Nop()) }

func BenchmarkObsRecording(b *testing.B) { benchObsWorkload(b, obs.NewRecorder()) }
