package arthas

import (
	"testing"
)

// demoSource is a minimal PM system with a type-II bug: a special request
// persists a corrupt pointer through a volatile temporary.
const demoSource = `
fn init_() {
    var root = pmalloc(4);
    var buf = pmalloc(8);
    root[0] = buf;
    root[1] = 8;
    persist(root, 2);
    setroot(0, root);
    return 0;
}
fn put(i, v) {
    var root = getroot(0);
    var buf = root[0];
    buf[i % 8] = v;
    persist(buf + (i % 8), 1);
    return 0;
}
fn get(i) {
    var root = getroot(0);
    var buf = root[0];
    return buf[i % 8];
}
fn corrupt(v) {
    var root = getroot(0);
    var tmp = v * 31;
    root[0] = tmp;
    persist(root, 2);
    return 0;
}
fn recover_() {
    recover_begin();
    var root = getroot(0);
    var x = root[1];
    recover_end();
    return x;
}
`

func newDemo(t *testing.T) *Instance {
	t.Helper()
	inst, err := New("demo", demoSource, Config{RecoverFn: "recover_"})
	if err != nil {
		t.Fatal(err)
	}
	if _, trap := inst.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	return inst
}

func TestFacadeEndToEnd(t *testing.T) {
	inst := newDemo(t)
	for i := int64(0); i < 8; i++ {
		if _, trap := inst.Call("put", i, 100+i); trap != nil {
			t.Fatal(trap)
		}
	}
	inst.Call("corrupt", 999)
	_, trap := inst.Call("get", 0)
	if trap == nil || trap.Kind != TrapSegfault {
		t.Fatalf("trap = %v", trap)
	}
	if _, hard := inst.Observe(trap); hard {
		t.Fatal("first observation flagged hard")
	}
	// Restart does not help: hard fault.
	inst.Restart()
	_, trap2 := inst.Call("get", 0)
	if trap2 == nil {
		t.Fatal("failure did not recur")
	}
	if _, hard := inst.Observe(trap2); !hard {
		t.Fatal("recurrence not flagged hard")
	}

	rep, err := inst.Mitigate(func() *Trap {
		if tp := inst.Restart(); tp != nil {
			return tp
		}
		_, tp := inst.Call("get", 0)
		return tp
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatalf("not recovered: %v", rep)
	}
	// Independent data survives.
	v, trap3 := inst.Call("get", 5)
	if trap3 != nil || v != 105 {
		t.Fatalf("get(5) = %d (%v)", v, trap3)
	}
	if inst.Stats() == "" {
		t.Fatal("empty stats")
	}
}

func TestFacadeMitigateWithoutObserve(t *testing.T) {
	inst := newDemo(t)
	if _, err := inst.Mitigate(nil); err == nil {
		t.Fatal("Mitigate without Observe succeeded")
	}
}

func TestFacadeBadSource(t *testing.T) {
	if _, err := New("bad", "fn f( {", Config{}); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestFacadeBitFlipAndLeak(t *testing.T) {
	inst := newDemo(t)
	root, _ := inst.Pool.Root(0)
	if err := inst.InjectBitFlip(root+1, 2); err != nil {
		t.Fatal(err)
	}
	v, _ := inst.Call("get", 0) // still works; just checking plumbing
	_ = v
	if inst.LeakSuspected() {
		t.Fatal("no leak yet")
	}
}

const leakSource = `
fn init_() {
    var root = pmalloc(2);
    root[0] = 0;
    persist(root, 1);
    setroot(0, root);
    return 0;
}
fn op(v) {
    var scratch = pmalloc(16);
    scratch[0] = v;
    persist(scratch, 1);
    var root = getroot(0);
    root[0] = root[0] + 1;
    persist(root, 1);
    return 0;
}
fn recover_() {
    recover_begin();
    var root = getroot(0);
    var n = root[0];
    recover_end();
    return n;
}
`

func TestFacadeLeakMitigation(t *testing.T) {
	inst, err := New("leaky", leakSource, Config{PoolWords: 4096, RecoverFn: "recover_"})
	if err != nil {
		t.Fatal(err)
	}
	inst.Call("init_")
	for i := int64(0); i < 50; i++ {
		inst.Call("op", i)
	}
	rep, err := inst.MitigateLeak()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FreedAddr) != 50 {
		t.Fatalf("freed %d blocks, want 50", len(rep.FreedAddr))
	}
	// The system still works afterwards.
	if _, trap := inst.Call("op", 1); trap != nil {
		t.Fatal(trap)
	}
}

func TestFacadeRetInstrs(t *testing.T) {
	inst := newDemo(t)
	if len(inst.RetInstrs("get")) == 0 {
		t.Fatal("no rets found")
	}
	if inst.RetInstrs("missing") != nil {
		t.Fatal("rets for missing function")
	}
}
