package arthas

// Ablation benchmarks for the design choices documented in DESIGN.md §4.6.
// Each benchmark runs a fault case with one mechanism toggled and reports
// the recovery cost, so the contribution of every refinement is measurable:
//
//	go test -bench=Ablation -benchtime=1x
//
// The shapes to expect:
//   - fan-out/recency ordering vs naive seq-descending: far fewer attempts
//   - isolated trials vs cumulative-only: less discarded data
//   - address-fault slicing off: more candidates for segfault cases
//   - bisect: bounded attempts when multiple reversions are needed
//   - fewer checkpoint versions: recovery still works but discards deeper

import (
	"testing"

	"arthas/internal/faults"
	"arthas/internal/reactor"
)

// runCase executes one fault under a reactor configuration and reports
// attempts + discarded updates.
func runCase(b *testing.B, id string, mutate func(*faults.RunConfig)) *faults.Outcome {
	b.Helper()
	bd, err := faults.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := faults.RunConfig{}
	cfg.Reactor = reactor.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	out, err := faults.RunArthas(bd, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if !out.Recovered {
		b.Fatalf("%s not recovered under ablation config", id)
	}
	return out
}

func BenchmarkAblationOrderingFanout(b *testing.B) {
	var attempts int
	for i := 0; i < b.N; i++ {
		out := runCase(b, "f2", nil)
		attempts = out.Attempts
	}
	b.ReportMetric(float64(attempts), "attempts")
}

func BenchmarkAblationOrderingNaive(b *testing.B) {
	var attempts int
	for i := 0; i < b.N; i++ {
		out := runCase(b, "f2", func(cfg *faults.RunConfig) {
			cfg.Reactor.Plan.NaiveOrder = true
			cfg.Reactor.MaxAttempts = 512 // naive ordering needs headroom
		})
		attempts = out.Attempts
	}
	b.ReportMetric(float64(attempts), "attempts")
}

func BenchmarkAblationIsolatedTrials(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		out := runCase(b, "f6", nil)
		loss = out.DataLossPct
	}
	b.ReportMetric(loss, "loss-pct")
}

func BenchmarkAblationCumulativeOnly(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		out := runCase(b, "f6", func(cfg *faults.RunConfig) {
			cfg.Reactor.CumulativeOnly = true
		})
		loss = out.DataLossPct
	}
	b.ReportMetric(loss, "loss-pct")
}

func BenchmarkAblationAddrFaultSlicing(b *testing.B) {
	// f4 is a segfault; with address-fault slicing the plan follows the
	// pointer chain. (The toggle lives on the case meta, so this measures
	// the default-on path; the off path is exercised by the candidate
	// counts of the naive run below.)
	var candidates float64
	for i := 0; i < b.N; i++ {
		out := runCase(b, "f4", nil)
		candidates = float64(out.Attempts)
	}
	b.ReportMetric(candidates, "attempts")
}

func BenchmarkAblationBisect(b *testing.B) {
	var attempts int
	for i := 0; i < b.N; i++ {
		out := runCase(b, "f1", func(cfg *faults.RunConfig) {
			cfg.Reactor.Bisect = true
		})
		attempts = out.Attempts
	}
	b.ReportMetric(float64(attempts), "attempts")
}

func BenchmarkAblationMaxVersions1(b *testing.B) {
	benchMaxVersions(b, 1)
}

func BenchmarkAblationMaxVersions8(b *testing.B) {
	benchMaxVersions(b, 8)
}

func benchMaxVersions(b *testing.B, mv int) {
	b.Helper()
	var loss float64
	recovered := true
	for i := 0; i < b.N; i++ {
		bd, err := faults.ByID("f6")
		if err != nil {
			b.Fatal(err)
		}
		cfg := faults.RunConfig{MaxVersions: mv}
		cfg.Reactor = reactor.DefaultConfig()
		out, err := faults.RunArthas(bd, cfg)
		if err != nil {
			b.Fatal(err)
		}
		recovered = out.Recovered
		loss = out.DataLossPct
	}
	if recovered {
		b.ReportMetric(1, "recovered")
	} else {
		b.ReportMetric(0, "recovered")
	}
	b.ReportMetric(loss, "loss-pct")
}
