package arthas

import (
	"strings"
	"testing"
)

func TestRunScriptBasics(t *testing.T) {
	inst := newDemo(t)
	lines, err := inst.RunScript("put 1 42; get 1; restart; get 1; stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasSuffix(lines[0], "-> 0") {
		t.Errorf("put line: %s", lines[0])
	}
	if !strings.HasSuffix(lines[1], "-> 42") {
		t.Errorf("get line: %s", lines[1])
	}
	if lines[2] != "restart -> ok" {
		t.Errorf("restart line: %s", lines[2])
	}
	if !strings.HasSuffix(lines[3], "-> 42") {
		t.Errorf("post-restart get: %s", lines[3])
	}
	if !strings.Contains(lines[4], "PDG edges") {
		t.Errorf("stats line: %s", lines[4])
	}
}

func TestRunScriptReportsTrapsAndHardness(t *testing.T) {
	inst := newDemo(t)
	lines, err := inst.RunScript("corrupt 999; get 0; restart; get 0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lines[1], "TRAP") || !strings.Contains(lines[1], "hard=false") {
		t.Errorf("first trap line: %s", lines[1])
	}
	if !strings.Contains(lines[3], "hard=true") {
		t.Errorf("recurrence line: %s", lines[3])
	}
	// The trap is now observable for mitigation.
	if inst.LastTrap() == nil {
		t.Fatal("script trap not recorded")
	}
}

func TestRunScriptBadArgument(t *testing.T) {
	inst := newDemo(t)
	if _, err := inst.RunScript("put one 2"); err == nil {
		t.Fatal("bad argument accepted")
	}
}

func TestRunScriptEmptyStatementsSkipped(t *testing.T) {
	inst := newDemo(t)
	lines, err := inst.RunScript(";;  ; get 0 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestRunScriptHexArguments(t *testing.T) {
	inst := newDemo(t)
	lines, err := inst.RunScript("put 0x2 0x10; get 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(lines[1], "-> 16") {
		t.Errorf("hex args: %v", lines)
	}
}
