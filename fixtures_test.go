package arthas

// Fixture tests: every PML program under testdata/ must compile, analyze,
// run its workload, and survive crash/restart with the expected durable
// state. These double as end-to-end coverage for the public facade against
// external (file-based) sources, the same inputs the CLI tools take.

import (
	"os"
	"path/filepath"
	"testing"
)

func loadFixture(t *testing.T, name string) *Instance {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(name, string(src), Config{RecoverFn: "recover_"})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return inst
}

func TestFixturesCompileAndAnalyze(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".pml" {
			continue
		}
		n++
		inst := loadFixture(t, e.Name())
		st := inst.Analysis.Stats()
		if st.PMInstrs == 0 {
			t.Errorf("%s: analyzer found no PM instructions", e.Name())
		}
	}
	if n < 3 {
		t.Fatalf("only %d fixtures found", n)
	}
}

func TestFixtureCounter(t *testing.T) {
	inst := loadFixture(t, "counter.pml")
	if _, trap := inst.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	for i := 0; i < 10; i++ {
		if _, trap := inst.Call("bump"); trap != nil {
			t.Fatal(trap)
		}
	}
	if trap := inst.Restart(); trap != nil {
		t.Fatal(trap)
	}
	v, trap := inst.Call("value")
	if trap != nil || v != 10 {
		t.Fatalf("counter after restart = %d (%v)", v, trap)
	}
}

func TestFixtureRinglog(t *testing.T) {
	inst := loadFixture(t, "ringlog.pml")
	if _, trap := inst.Call("init_", 8); trap != nil {
		t.Fatal(trap)
	}
	for i := int64(1); i <= 20; i++ {
		if _, trap := inst.Call("append_", i*11); trap != nil {
			t.Fatal(trap)
		}
	}
	inst.Restart()
	// Newest three records survive the crash (transactional appends).
	for i := int64(0); i < 3; i++ {
		v, trap := inst.Call("nth", i)
		if trap != nil {
			t.Fatal(trap)
		}
		if v != (20-i)*11 {
			t.Fatalf("nth(%d) = %d, want %d", i, v, (20-i)*11)
		}
	}
	if v, _ := inst.Call("total"); v != 20 {
		t.Fatalf("total = %d", v)
	}
	// Out-of-range reads miss cleanly.
	if v, _ := inst.Call("nth", 100); v != -1 {
		t.Fatalf("nth(100) = %d", v)
	}
}

func TestFixtureLinkedSet(t *testing.T) {
	inst := loadFixture(t, "linkedset.pml")
	if _, trap := inst.Call("init_"); trap != nil {
		t.Fatal(trap)
	}
	// Two threads fill disjoint ranges concurrently under the lock.
	n, trap := inst.Call("parallel_fill", 25)
	if trap != nil {
		t.Fatal(trap)
	}
	if n != 50 {
		t.Fatalf("parallel_fill -> size %d, want 50", n)
	}
	// Order invariant holds and survives restart.
	if _, trap := inst.Call("checksorted"); trap != nil {
		t.Fatal(trap)
	}
	inst.Restart()
	if _, trap := inst.Call("checksorted"); trap != nil {
		t.Fatalf("sortedness lost across restart: %v", trap)
	}
	for _, v := range []int64{0, 24, 25, 49} {
		got, _ := inst.Call("contains", v)
		if got != 1 {
			t.Fatalf("contains(%d) = %d", v, got)
		}
	}
	if got, _ := inst.Call("contains", 50); got != 0 {
		t.Fatalf("contains(50) = %d, want 0", got)
	}
	// Duplicate inserts are rejected.
	if got, _ := inst.Call("insert", 10); got != 0 {
		t.Fatal("duplicate insert accepted")
	}
}

func TestFixtureUnpersistedTailLost(t *testing.T) {
	// The counter's bump persists every step, but a manual store without
	// persist is lost on restart — fixtures obey the durability model.
	inst := loadFixture(t, "counter.pml")
	inst.Call("init_")
	inst.Call("bump")
	root, _ := inst.Pool.Root(0)
	inst.Pool.Store(root, 99) // unpersisted scribble
	inst.Restart()
	v, _ := inst.Call("value")
	if v != 1 {
		t.Fatalf("value = %d, want 1 (unpersisted store must vanish)", v)
	}
}
